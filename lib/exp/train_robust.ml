module Wire = Serve.Wire

type recert = {
  rc_digest : string;
  rc_grid : (float * float array) array;
  rc_eps : float array;
  rc_cells : int;
  rc_cache_hits : int;
  rc_wall : float;
  rc_throughput : float;
  rc_degraded : bool;
}

type epoch_record = {
  epoch : int;
  train_loss : float;
  metric : float;
  accuracy : float;
  surrogate : float;
  recert : recert option;
}

type config = {
  loss : Nn.Train.loss;
  optimizer : Nn.Train.optimizer;
  epochs : int;
  batch_size : int;
  seed : int;
  lambda : float;
  delta : float;
  lo : float;
  hi : float;
  grid : float list;
  window : int;
  acc_tol : float;
}

let default_config =
  let delta = 2.0 /. 255.0 in
  { loss = Nn.Train.Mse; optimizer = Nn.Train.adam ~lr:1e-4 (); epochs = 5;
    batch_size = 32; seed = 7; lambda = 1e-3; delta; lo = 0.0; hi = 1.0;
    grid = [ delta /. 2.0 ]; window = 2; acc_tol = 0.1 }

let accuracy ~loss ~acc_tol net (ds : Data.Dataset.t) =
  match loss with
  | Nn.Train.Softmax_ce ->
      Nn.Train.accuracy net ~xs:ds.Data.Dataset.xs
        ~labels:(Data.Dataset.labels ds)
  | Nn.Train.Mse ->
      let n = Array.length ds.Data.Dataset.xs in
      let ok = ref 0 in
      for i = 0 to n - 1 do
        let pred = Nn.Network.forward net ds.Data.Dataset.xs.(i) in
        if Float.abs (pred.(0) -. ds.Data.Dataset.ys.(i).(0)) <= acc_tol then
          incr ok
      done;
      float_of_int !ok /. float_of_int (max 1 n)

let recertify client ~window ~lo ~hi ~deltas ~target net =
  if Array.length deltas = 0 then invalid_arg "Train_robust.recertify: deltas";
  let digest = Serve.Client.load client (Nn.Io.to_string net) in
  let queries =
    Array.map
      (fun d ->
        { Wire.default_query with
          Wire.q_digest = Some digest; q_delta = d; q_lo = lo; q_hi = hi;
          q_window = window })
      deltas
  in
  let t0 = Unix.gettimeofday () in
  let results, degraded = Serve.Client.certify_batch client queries in
  let wall = Unix.gettimeofday () -. t0 in
  let hits = ref 0 in
  let grid =
    Array.mapi
      (fun i r ->
        match r with
        | Ok r ->
            if r.Wire.r_cached then incr hits;
            if r.Wire.r_digest <> digest then
              failwith "Train_robust.recertify: answer for a stale digest";
            (deltas.(i), r.Wire.r_eps)
        | Error e ->
            failwith
              (Printf.sprintf "Train_robust.recertify: cell %d (delta %g): %s"
                 i deltas.(i) e))
      results
  in
  let rc_eps =
    match Array.find_opt (fun (d, _) -> d = target) grid with
    | Some (_, eps) -> eps
    | None -> snd grid.(Array.length grid - 1)
  in
  let cells = Array.length deltas in
  { rc_digest = digest; rc_grid = grid; rc_eps; rc_cells = cells;
    rc_cache_hits = !hits; rc_wall = wall;
    rc_throughput = (if wall > 0.0 then float_of_int cells /. wall else 0.0);
    rc_degraded = degraded }

let grid_deltas config =
  List.sort_uniq compare (config.delta :: config.grid) |> Array.of_list

let run ?client ?on_epoch config net ~train ~test =
  let xs = train.Data.Dataset.xs and ys = train.Data.Dataset.ys in
  let n = Array.length xs in
  if n = 0 then invalid_arg "Train_robust.run: empty train set";
  if Array.length ys <> n then invalid_arg "Train_robust.run: xs/ys length";
  let deltas = grid_deltas config in
  let input_box = Nn.Robust.box net ~lo:config.lo ~hi:config.hi in
  let dist = Nn.Robust.uniform_dist net config.delta in
  let eval epoch =
    let train_loss = Nn.Train.mean_loss config.loss net ~xs ~ys in
    let metric =
      Nn.Train.mean_loss config.loss net ~xs:test.Data.Dataset.xs
        ~ys:test.Data.Dataset.ys
    in
    let acc = accuracy ~loss:config.loss ~acc_tol:config.acc_tol net test in
    let surrogate =
      Nn.Robust.penalty net (Nn.Robust.record net ~input:input_box ~dist)
    in
    let recert =
      Option.map
        (fun c ->
          recertify c ~window:config.window ~lo:config.lo ~hi:config.hi
            ~deltas ~target:config.delta net)
        client
    in
    let r =
      { epoch; train_loss; metric; accuracy = acc; surrogate; recert }
    in
    (match on_epoch with Some f -> f r net | None -> ());
    r
  in
  let rng = Random.State.make [| config.seed |] in
  let order = Array.init n Fun.id in
  let state = Nn.Train.make_state net in
  let grads = Nn.Train.alloc_grads net in
  let records = ref [ eval 0 ] in
  for epoch = 1 to config.epochs do
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    let pos = ref 0 in
    while !pos < n do
      let bsz = min config.batch_size (n - !pos) in
      Nn.Train.zero_grads grads;
      for k = 0 to bsz - 1 do
        let idx = order.(!pos + k) in
        let tape = Nn.Grad.record net xs.(idx) in
        let pred = tape.Nn.Grad.posts.(Nn.Network.n_layers net - 1) in
        let _, dout =
          Nn.Train.loss_value_grad config.loss ~pred ~target:ys.(idx)
        in
        ignore (Nn.Grad.backprop_params net tape ~dout grads)
      done;
      (* the penalty enters once per update; pre-scale by the batch
         size so the optimiser's 1/bsz leaves an effective weight of
         exactly [lambda] *)
      if config.lambda > 0.0 then
        ignore
          (Nn.Robust.penalty_grad
             ~scale:(config.lambda *. float_of_int bsz)
             net ~input:input_box ~dist grads);
      Nn.Train.apply_update config.optimizer state net grads
        (1.0 /. float_of_int bsz);
      pos := !pos + bsz
    done;
    records := eval epoch :: !records
  done;
  List.rev !records

type family =
  | Auto_mpg
  | Digits of { image : int }
  | Camera of { h : int; w : int }

(* Same generators, sizes and seeds as the corresponding Models
   trainers, so the splits reproduce a cached model's data exactly. *)
let family_data = function
  | Auto_mpg ->
      let ds = Data.Auto_mpg.generate ~n:400 ~seed:11 () in
      let train, test = Data.Dataset.split ds ~train_fraction:0.8 in
      (train, test, Nn.Train.Mse)
  | Digits { image } ->
      let ds = Data.Digits.generate ~h:image ~w:image ~n:800 ~seed:23 () in
      let train, test = Data.Dataset.split ds ~train_fraction:0.8 in
      (train, test, Nn.Train.Softmax_ce)
  | Camera { h; w } ->
      let ds = Data.Camera.generate ~h ~w ~n:500 ~seed:31 () in
      let train, test = Data.Dataset.split ds ~train_fraction:0.8 in
      (train, test, Nn.Train.Mse)

let with_local_service ?cache_path ?(workers = 2) f =
  let sock = Filename.temp_file "grc-train" ".sock" in
  Sys.remove sock;
  let addr = Serve.Server.Unix_path sock in
  let config =
    { (Serve.Server.default_config addr) with
      Serve.Server.workers; cache_path; handle_signals = false;
      verbose = false }
  in
  let srv = Domain.spawn (fun () -> Serve.Server.run config) in
  let client = Serve.Client.connect_retry addr in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Serve.Client.rpc client Wire.Shutdown) with _ -> ());
      (try Serve.Client.close client with _ -> ());
      Domain.join srv;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f client)
