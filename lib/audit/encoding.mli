(** Encoding auditor: ITNE/BTNE invariant checks.

    Static and sampling-based checks over the certifier's bound state
    and the LP encodings built from it:

    - {!intervals}: every stored interval is well-formed
      ([lo <= hi], no NaN);
    - {!itne}: window consistency (the encoding's variables cover
      exactly the view's active cone), variable bounds agree with the
      bound state, and every per-neuron relaxation row (triangle / LPR
      chord) is sound — the true ReLU semantics
      [x = relu(y)], [dx = relu(y + dy) - relu(y)] satisfies it on a
      deterministic sample grid over the neuron's [y] and [dy] ranges;
    - {!btne}: twin symmetry — the two explicit network copies have
      identical structure and variable bounds;
    - {!bounds_soundness}: concrete input pairs, forwarded through the
      real network, land inside the stored [y]/[x]/[dy]/[dx] intervals.

    All checks return diagnostics ({!Audit_core.Diag.t}); they never
    raise.  Unsound findings are [Error]-severity, internal fallbacks
    that merely lose precision are [Warn]. *)

val intervals :
  ?name:string -> Cert.Bounds.t -> Audit_core.Diag.t list
(** Well-formedness of every interval in the bound state. *)

val itne :
  ?name:string ->
  bounds:Cert.Bounds.t -> Cert.Encode.itne_enc -> Audit_core.Diag.t list
(** Invariants of an interleaving twin-network encoding built from
    [bounds]: cone coverage, variable-bound consistency, and sampled
    soundness of every constraint row that involves only one neuron's
    variables (the ReLU and distance relaxations). *)

val btne :
  ?name:string -> Cert.Encode.btne_enc -> Audit_core.Diag.t list
(** Twin symmetry of a basic twin-network encoding: the two copies
    must expose the same neurons, with identical variable bounds and
    identical splittable-ReLU bookkeeping. *)

val bounds_soundness :
  ?name:string ->
  ?samples:int ->
  ?tol:float ->
  Nn.Network.t -> Cert.Bounds.t -> Audit_core.Diag.t list
(** Empirical soundness of the bound state: [samples] deterministic
    input pairs (corner cases plus a fixed pseudo-random sequence) are
    forwarded through [net]; every pre-/post-activation value and twin
    distance must lie in its stored interval, within [tol] (scaled by
    magnitude).  Default [samples] is 32, [tol] is 1e-6. *)
