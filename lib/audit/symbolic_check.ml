module Diag = Audit_core.Diag
module I = Cert.Interval
module Bounds = Cert.Bounds

let pass = "symbolic-check"

let slack tol m = tol *. Float.max 1.0 (Float.abs m)

let bad_interval (iv : I.t) =
  Float.is_nan iv.I.lo || Float.is_nan iv.I.hi || iv.I.lo > iv.I.hi

(* quantity tables of a bound state, in reporting order *)
let tables (b : Bounds.t) =
  [ ("y", b.Bounds.y); ("dy", b.Bounds.dy);
    ("x", b.Bounds.x); ("dx", b.Bounds.dx) ]

let iter_neurons f tbls =
  List.iter
    (fun (what, (mat : I.t array array)) ->
      Array.iteri (fun i row -> Array.iteri (fun j iv -> f what i j iv) row)
        mat)
    tbls

let check ?(name = "symbolic") ?(samples = 32) ?(tol = 1e-6) ?certified net
    ~input ~delta =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let fresh () =
    let b =
      Bounds.create net ~input ~input_dist:(Bounds.uniform_delta net delta)
    in
    Cert.Interval_prop.propagate net b;
    b
  in
  (* three independent analyses over the same propagated base *)
  let b_ip = fresh () in
  let b_fwd = Bounds.copy b_ip in
  Cert.Symbolic.propagate net b_fwd;
  let b_back = Bounds.copy b_ip in
  ignore (Cert.Symbolic_back.analyse net b_back);
  (* 1. well-formedness of every symbolic interval *)
  List.iter
    (fun (label, b) ->
      iter_neurons
        (fun what i j iv ->
          if bad_interval iv then
            add
              (Diag.make Diag.Error ~pass ~code:"invalid-interval"
                 ~loc:(Diag.loc ~neuron:(i, j) ~var:what name)
                 (Printf.sprintf "%s %s interval [%g, %g] is malformed"
                    label what iv.I.lo iv.I.hi)))
        (tables b))
    [ ("forward", b_fwd); ("backward", b_back) ];
  (* 2. tightness chain: backward subset of forward subset of interval
     propagation, per neuron and quantity.  Both passes tighten by
     meet, so a violation means a meet silently dropped a proven bound
     or produced a fresh interval from thin air. *)
  let subset ~inner_label ~outer_label inner outer =
    List.iter2
      (fun (what, (im : I.t array array)) (_, (om : I.t array array)) ->
        Array.iteri
          (fun i row ->
            Array.iteri
              (fun j (iiv : I.t) ->
                let oiv : I.t = om.(i).(j) in
                if
                  iiv.I.lo < oiv.I.lo -. slack tol oiv.I.lo
                  || iiv.I.hi > oiv.I.hi +. slack tol oiv.I.hi
                then
                  add
                    (Diag.make Diag.Error ~pass ~code:"tightness-chain"
                       ~loc:(Diag.loc ~neuron:(i, j) ~var:what name)
                       (Printf.sprintf
                          "%s interval %s is not contained in the %s \
                           interval %s"
                          inner_label (I.to_string iiv) outer_label
                          (I.to_string oiv))))
              row)
          im)
      (tables inner) (tables outer)
  in
  subset ~inner_label:"forward-symbolic" ~outer_label:"interval-propagation"
    b_fwd b_ip;
  subset ~inner_label:"backward-symbolic" ~outer_label:"forward-symbolic"
    b_back b_fwd;
  (* 3. the backward bounds and the certified (LP-refined) bounds must
     agree on a nonempty region — both claim to enclose the same true
     reachable set, so an empty meet proves one of them unsound *)
  (match certified with
   | None -> ()
   | Some (c : Bounds.t) ->
       List.iter2
         (fun (what, (sm : I.t array array)) (_, (cm : I.t array array)) ->
           Array.iteri
             (fun i row ->
               Array.iteri
                 (fun j siv ->
                   match I.meet siv cm.(i).(j) with
                   | Some _ -> ()
                   | None ->
                       add
                         (Diag.make Diag.Error ~pass ~code:"empty-meet"
                            ~loc:(Diag.loc ~neuron:(i, j) ~var:what name)
                            (Printf.sprintf
                               "backward-symbolic interval %s is disjoint \
                                from the certified interval %s"
                               (I.to_string siv)
                               (I.to_string cm.(i).(j)))))
                 row)
             sm)
         (tables b_back) (tables c));
  (* 4. sampled soundness of the tightest claim: concrete twin pairs,
     forwarded through the real network, must land inside the backward
     intervals *)
  let dim = Nn.Network.input_dim net in
  let state = ref 0x5DEECE66 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x40000000
  in
  let pick (iv : I.t) u =
    let lo = Float.max iv.I.lo (-1e6) and hi = Float.min iv.I.hi 1e6 in
    if lo > hi then lo else lo +. (u *. (hi -. lo))
  in
  let within (iv : I.t) v =
    let eps = slack tol v in
    v >= iv.I.lo -. eps && v <= iv.I.hi +. eps
  in
  let seen = Hashtbl.create 32 in
  let report i j what iv v =
    if (not (within iv v)) && not (Hashtbl.mem seen (i, j, what)) then begin
      Hashtbl.replace seen (i, j, what) ();
      add
        (Diag.make Diag.Error ~pass ~code:"unsound-interval"
           ~loc:(Diag.loc ~neuron:(i, j) ~var:what name)
           (Printf.sprintf
              "concrete %s value %g escapes the backward-symbolic interval \
               %s"
              what v (I.to_string iv)))
    end
  in
  let clip k v =
    let iv = b_back.Bounds.input.(k) in
    Float.max iv.I.lo (Float.min iv.I.hi v)
  in
  let check_sample xa xb =
    let d_ok = ref true in
    Array.iteri
      (fun k _ ->
        if not (within b_back.Bounds.input_dist.(k) (xb.(k) -. xa.(k))) then
          d_ok := false)
      xa;
    if !d_ok then begin
      let pres_a, posts_a = Nn.Network.forward_all net xa in
      let pres_b, posts_b = Nn.Network.forward_all net xb in
      Array.iteri
        (fun i pa ->
          Array.iteri
            (fun j v ->
              report i j "y" b_back.Bounds.y.(i).(j) v;
              report i j "x" b_back.Bounds.x.(i).(j) posts_a.(i).(j);
              report i j "dy" b_back.Bounds.dy.(i).(j)
                (pres_b.(i).(j) -. v);
              report i j "dx" b_back.Bounds.dx.(i).(j)
                (posts_b.(i).(j) -. posts_a.(i).(j)))
            pa)
        pres_a
    end
  in
  let mk fa fd =
    let xa = Array.init dim (fun k -> pick b_back.Bounds.input.(k) (fa k)) in
    let xb =
      Array.init dim (fun k ->
          clip k (xa.(k) +. pick b_back.Bounds.input_dist.(k) (fd k)))
    in
    check_sample xa xb
  in
  mk (fun _ -> 0.5) (fun _ -> 0.5);
  mk (fun _ -> 0.0) (fun _ -> 1.0);
  mk (fun _ -> 1.0) (fun _ -> 0.0);
  for _ = 1 to Int.max 0 (samples - 3) do
    mk (fun _ -> next ()) (fun _ -> next ())
  done;
  (* 5. the stability table's phases must hold on the sampled pairs by
     construction of the backward y intervals; check the table is
     consistent with them *)
  let analysis, b_tight = Cert.Symbolic_back.stable_phases net ~input ~delta in
  Hashtbl.iter
    (fun (i, j) phase ->
      let iv : I.t = b_tight.Bounds.y.(i).(j) in
      let ok =
        match phase with
        | Cert.Encode.Ph_active -> iv.I.lo >= 0.0
        | Cert.Encode.Ph_inactive -> iv.I.hi <= 0.0
      in
      if not ok then
        add
          (Diag.make Diag.Error ~pass ~code:"phase-mismatch"
             ~loc:(Diag.loc ~neuron:(i, j) ~var:"y" name)
             (Printf.sprintf
                "stability table claims a fixed phase but the y interval %s \
                 straddles 0"
                (I.to_string iv))))
    analysis.Cert.Symbolic_back.stable;
  List.rev !diags
