module Diag = Audit_core.Diag

let pass = "plan"

(* Static consistency audit of a query plan: the planner's counters
   must agree with the plan's actual contents, and every variable a
   unit touches (objective terms, bound overrides) must exist in its
   task's model.  A violation means the executor would either crash or
   silently solve the wrong LP, so everything here is Error-severity
   except the advisory notes at the end. *)
let check ?(name = "plan") (plan : Plan.t) =
  let diags = ref [] in
  let push severity ~code ~loc msg =
    diags := Diag.make severity ~pass ~code ~loc msg :: !diags
  in
  let tasks = plan.Plan.tasks in
  let n_tasks = Array.length tasks in
  if plan.Plan.n_encodes <> n_tasks then
    push Diag.Error ~code:"encode-count" ~loc:(Diag.loc name)
      (Printf.sprintf "n_encodes = %d but plan holds %d tasks"
         plan.Plan.n_encodes n_tasks);
  (* branching metadata: probe and partition variables are only hints
     (dual accumulation targets, interval-split candidates), but a
     variable outside the task's model would crash the executor's
     column tables, and a partition candidate that is integer-marked
     would be split fractionally by [Dy_partition]. *)
  Array.iteri
    (fun t (task : Plan.task) ->
      let loc = Diag.loc ~row:t name in
      let model = task.Plan.model in
      let nv = Lp.Model.n_vars model in
      Array.iter
        (fun ((_, v) : (int * int) * Lp.Model.var) ->
          if v < 0 || v >= nv then
            push Diag.Error ~code:"probe-var-range" ~loc
              (Printf.sprintf
                 "task %S: probe variable %d outside model (%d vars)"
                 task.Plan.label v nv))
        task.Plan.probes;
      Array.iter
        (fun v ->
          if v < 0 || v >= nv then
            push Diag.Error ~code:"partition-var-range" ~loc
              (Printf.sprintf
                 "task %S: partition variable %d outside model (%d vars)"
                 task.Plan.label v nv)
          else if Lp.Model.is_integer model v then
            push Diag.Warn ~code:"partition-integer-var" ~loc
              (Printf.sprintf
                 "task %S: partition variable %d is integer-marked; \
                  interval splits would be fractional" task.Plan.label v))
        task.Plan.partition)
    tasks;
  let replayed = Array.make (max 1 n_tasks) 0 in
  let queries = ref 0 and replays = ref 0 in
  Array.iteri
    (fun u (unit_ : Plan.unit_of_work) ->
      let loc = Diag.loc ~row:u name in
      queries := !queries + Array.length unit_.Plan.queries;
      if unit_.Plan.task_id < 0 || unit_.Plan.task_id >= n_tasks then
        push Diag.Error ~code:"task-id-range" ~loc
          (Printf.sprintf "unit %d references task %d of %d" u
             unit_.Plan.task_id n_tasks)
      else begin
        let task = tasks.(unit_.Plan.task_id) in
        let model = task.Plan.model in
        let nv = Lp.Model.n_vars model in
        let check_var ~code v =
          if v < 0 || v >= nv then
            push Diag.Error ~code ~loc
              (Printf.sprintf "unit %d (task %S): variable %d outside model \
                               (%d vars)"
                 u task.Plan.label v nv)
        in
        Array.iter
          (fun (qs : Plan.query_spec) ->
            List.iter (fun (v, _) -> check_var ~code:"query-var-range" v)
              qs.Plan.terms)
          unit_.Plan.queries;
        if unit_.Plan.overrides <> [] then begin
          incr replays;
          replayed.(unit_.Plan.task_id) <- replayed.(unit_.Plan.task_id) + 1;
          if task.Plan.signature = "" then
            push Diag.Error ~code:"replay-unsigned" ~loc
              (Printf.sprintf
                 "unit %d replays task %S which has no cone signature" u
                 task.Plan.label);
          List.iter
            (fun (v, (r : Plan.range)) ->
              check_var ~code:"override-var-range" v;
              if not (r.Plan.lo <= r.Plan.hi) then
                push Diag.Error ~code:"override-empty" ~loc
                  (Printf.sprintf
                     "unit %d overrides variable %d with empty range \
                      [%g, %g]" u v r.Plan.lo r.Plan.hi);
              if v >= 0 && v < nv && task.Plan.integer
                 && Lp.Model.is_integer model v then
                push Diag.Warn ~code:"override-integer-var" ~loc
                  (Printf.sprintf
                     "unit %d overrides integer variable %d: replay will \
                      re-round its bounds" u v))
            unit_.Plan.overrides
        end
      end)
    plan.Plan.units;
  if plan.Plan.n_queries <> !queries then
    push Diag.Error ~code:"query-count" ~loc:(Diag.loc name)
      (Printf.sprintf "n_queries = %d but units carry %d queries"
         plan.Plan.n_queries !queries);
  if plan.Plan.dedup_hits <> !replays then
    push Diag.Error ~code:"dedup-count" ~loc:(Diag.loc name)
      (Printf.sprintf
         "dedup_hits = %d but %d units carry bound overrides"
         plan.Plan.dedup_hits !replays);
  Array.iteri
    (fun i (a : Plan.affine) ->
      List.iter
        (fun ((c, r) : float * Plan.range) ->
          if not (Float.is_finite c) then
            push Diag.Error ~code:"affine-coeff" ~loc:(Diag.loc ~row:i name)
              (Printf.sprintf "affine item %d has non-finite coefficient" i);
          if not (r.Plan.lo <= r.Plan.hi) then
            push Diag.Error ~code:"affine-range" ~loc:(Diag.loc ~row:i name)
              (Printf.sprintf "affine item %d has empty input range [%g, %g]"
                 i r.Plan.lo r.Plan.hi))
        a.Plan.a_terms)
    plan.Plan.affine;
  (* advisory summary: how much work dedup saved *)
  Array.iteri
    (fun t k ->
      if k > 0 then
        push Diag.Info ~code:"dedup-replays" ~loc:(Diag.loc name)
          (Printf.sprintf "task %S answers %d replayed cone(s)"
             tasks.(t).Plan.label k))
    (if n_tasks = 0 then [||] else replayed);
  List.rev !diags
