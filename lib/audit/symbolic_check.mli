(** Lint pass for the symbolic pre-analyses ({!Cert.Symbolic} forward,
    {!Cert.Symbolic_back} backward).

    Five checks, all returning diagnostics and never raising:

    - every interval either pass produces is well-formed;
    - the tightness chain holds per neuron and quantity: backward
      bounds are contained in forward bounds, which are contained in
      plain interval propagation (all three run independently from the
      same propagated base, so containment is evidence the meets
      compose soundly rather than true by aliasing);
    - when the certifier's LP-refined bound state is supplied, its
      intervals and the backward-symbolic intervals must overlap —
      both enclose the same true reachable set, so an empty meet proves
      one of them unsound (note containment in {e either} direction is
      not required: a window LP and a global backward substitution are
      incomparable relaxations);
    - sampled soundness: deterministic concrete twin pairs forwarded
      through the real network must land inside the backward intervals
      (the tightest claim made);
    - the stability table's phases agree with the backward [y]
      intervals they were derived from.

    Unsound findings are [Error]-severity; [grc lint] fails on any. *)

val check :
  ?name:string ->
  ?samples:int ->
  ?tol:float ->
  ?certified:Cert.Bounds.t ->
  Nn.Network.t ->
  input:Cert.Interval.t array -> delta:float -> Audit_core.Diag.t list
(** Runs interval propagation, the forward pass and the backward pass
    independently on fresh bound states for [net] over [input] with
    perturbation radius [delta], then applies the checks above.
    [certified] is the bound state returned by
    {!Cert.Certifier.certify} for the same query.  Default [samples]
    is 32, [tol] 1e-6 (magnitude-scaled). *)
