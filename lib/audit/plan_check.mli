(** Static consistency audit of certification query plans.

    Validates a {!Plan.t} before (or instead of) execution: planner
    counters must match the plan's contents ([n_encodes] = task count,
    [n_queries] = total queries across units, [dedup_hits] = units with
    bound overrides); every variable referenced by a unit's objective
    terms or bound overrides must exist in its task's model; override
    and affine input ranges must be non-empty; replayed units must
    point at a signed (deduplicable) task.  Never raises. *)

val check : ?name:string -> Plan.t -> Audit_core.Diag.t list
(** [check ?name plan] returns all findings, [Error]-severity for
    violations the executor cannot survive, [Warn] for integer-variable
    overrides, [Info] notes summarising dedup replays per task. *)
