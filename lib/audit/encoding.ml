module Diag = Audit_core.Diag
module Model = Lp.Model
module I = Cert.Interval
module Bounds = Cert.Bounds
module Encode = Cert.Encode
module Subnet = Cert.Subnet

let pass = "encoding"

(* magnitude-scaled comparison slack *)
let slack tol m = tol *. Float.max 1.0 (Float.abs m)

let bad_interval (iv : I.t) =
  Float.is_nan iv.I.lo || Float.is_nan iv.I.hi || iv.I.lo > iv.I.hi

(* --- interval well-formedness ------------------------------------- *)

let intervals ?(name = "bounds") (b : Bounds.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let malformed what loc (iv : I.t) =
    add
      (Diag.make Diag.Error ~pass ~code:"invalid-interval" ~loc
         (Printf.sprintf "%s interval [%g, %g] is malformed" what iv.I.lo
            iv.I.hi))
  in
  let check_arr what arr =
    Array.iteri
      (fun k iv ->
        if bad_interval iv then
          malformed what (Diag.loc ~var:(Printf.sprintf "%s[%d]" what k) name)
            iv)
      arr
  in
  check_arr "input" b.Bounds.input;
  check_arr "input_dist" b.Bounds.input_dist;
  let check_layers what mat =
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j iv ->
            if bad_interval iv then
              malformed what (Diag.loc ~neuron:(i, j) ~var:what name) iv)
          row)
      mat
  in
  check_layers "y" b.Bounds.y;
  check_layers "x" b.Bounds.x;
  check_layers "dy" b.Bounds.dy;
  check_layers "dx" b.Bounds.dx;
  List.rev !diags

(* --- ITNE invariants ---------------------------------------------- *)

(* Deterministic sample points of a finite interval: endpoints, interior
   quarters, and the kink at 0 when it is inside. *)
let grid (iv : I.t) =
  if not (I.is_finite iv) then []
  else begin
    let lo = iv.I.lo and hi = iv.I.hi in
    let pts =
      [ lo;
        (0.75 *. lo) +. (0.25 *. hi);
        0.5 *. (lo +. hi);
        (0.25 *. lo) +. (0.75 *. hi);
        hi ]
    in
    let pts = if lo <= 0.0 && hi >= 0.0 then 0.0 :: pts else pts in
    List.sort_uniq compare pts
  end

let relu v = Float.max 0.0 v

(* Violation (if any) of [row sense rhs] at an assignment. *)
let row_violation (c : Model.constr) value_of =
  let lhs =
    List.fold_left (fun acc (v, a) -> acc +. (a *. value_of v)) 0.0 c.Model.row
  in
  let mass =
    List.fold_left
      (fun acc (v, a) -> acc +. Float.abs (a *. value_of v))
      (Float.abs c.Model.rhs) c.Model.row
  in
  let eps = slack 1e-7 mass in
  match c.Model.sense with
  | Model.Le -> if lhs > c.Model.rhs +. eps then Some (lhs -. c.Model.rhs) else None
  | Model.Ge -> if lhs < c.Model.rhs -. eps then Some (c.Model.rhs -. lhs) else None
  | Model.Eq ->
      let d = Float.abs (lhs -. c.Model.rhs) in
      if d > eps then Some d else None

let itne ?(name = "itne") ~(bounds : Bounds.t) (enc : Encode.itne_enc) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let model = enc.Encode.model in
  let view = enc.Encode.view in
  (* window consistency: the encoding's neurons are exactly the cone *)
  let expected = ref 0 in
  Array.iteri
    (fun k actives ->
      let abs = view.Subnet.first + k in
      Array.iter
        (fun j ->
          incr expected;
          if not (Hashtbl.mem enc.Encode.vars (abs, j)) then
            add
              (Diag.make Diag.Error ~pass ~code:"missing-neuron"
                 ~loc:(Diag.loc ~neuron:(abs, j) name)
                 "active cone neuron has no encoded variables"))
        actives)
    view.Subnet.active;
  if Hashtbl.length enc.Encode.vars <> !expected then
    add
      (Diag.make Diag.Error ~pass ~code:"window-mismatch"
         ~loc:(Diag.loc name)
         (Printf.sprintf
            "encoding has %d neuron entries but the view's cone has %d"
            (Hashtbl.length enc.Encode.vars) !expected));
  (* variable bounds vs the bound state; also map var -> owning neuron *)
  let owner = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (abs, j) (nv : Encode.neuron_vars) ->
      let y_iv = bounds.Bounds.y.(abs).(j)
      and dy_iv = bounds.Bounds.dy.(abs).(j) in
      let reg v = Hashtbl.replace owner v (abs, j) in
      reg nv.Encode.y;
      reg nv.Encode.dy;
      Option.iter reg nv.Encode.x;
      Option.iter reg nv.Encode.dx;
      let mismatch what msg =
        add
          (Diag.make Diag.Error ~pass ~code:"encoding-bounds-mismatch"
             ~loc:(Diag.loc ~neuron:(abs, j) ~var:what name)
             msg)
      in
      let check_equal what v (iv : I.t) =
        if
          Float.abs (Model.var_lo model v -. iv.I.lo) > slack 1e-9 iv.I.lo
          || Float.abs (Model.var_hi model v -. iv.I.hi) > slack 1e-9 iv.I.hi
        then
          mismatch what
            (Printf.sprintf
               "%s variable bounds [%g, %g] differ from the stored interval %s"
               what (Model.var_lo model v) (Model.var_hi model v)
               (I.to_string iv))
      in
      check_equal "y" nv.Encode.y y_iv;
      check_equal "dy" nv.Encode.dy dy_iv;
      let check_subset what v (stored : I.t) (implied : I.t) implied_what =
        let lo = Model.var_lo model v and hi = Model.var_hi model v in
        if
          lo < stored.I.lo -. slack 1e-9 stored.I.lo
          || hi > stored.I.hi +. slack 1e-9 stored.I.hi
        then
          mismatch what
            (Printf.sprintf
               "%s variable bounds [%g, %g] exceed the stored interval %s" what
               lo hi (I.to_string stored))
        else if
          lo < implied.I.lo -. slack 1e-9 implied.I.lo
          || hi > implied.I.hi +. slack 1e-9 implied.I.hi
        then
          (* the encoder fell back to the stored interval because it was
             disjoint from the semantic enclosure: precision loss at
             best, an unsound bound state at worst *)
          add
            (Diag.make Diag.Warn ~pass ~code:"inconsistent-interval"
               ~loc:(Diag.loc ~neuron:(abs, j) ~var:what name)
               (Printf.sprintf
                  "stored %s interval is inconsistent with %s (%s vs %s)" what
                  implied_what (I.to_string stored) (I.to_string implied)))
      in
      Option.iter
        (fun xv ->
          check_subset "x" xv bounds.Bounds.x.(abs).(j) (I.relu y_iv)
            "relu(y)")
        nv.Encode.x;
      Option.iter
        (fun dxv ->
          check_subset "dx" dxv bounds.Bounds.dx.(abs).(j)
            (I.relu_dist ~y:y_iv ~dy:dy_iv)
            "the relu-distance enclosure")
        nv.Encode.dx)
    enc.Encode.vars;
  (* per-neuron rows (ReLU and distance relaxations) must admit the
     true semantics x = relu(y), dx = relu(y + dy) - relu(y) on a
     sample grid over the neuron's encoded ranges *)
  Array.iteri
    (fun ci (c : Model.constr) ->
      let neuron = ref None and single = ref (c.Model.row <> []) in
      List.iter
        (fun (v, _) ->
          match Hashtbl.find_opt owner v with
          | None -> single := false
          | Some key -> (
              match !neuron with
              | None -> neuron := Some key
              | Some k -> if k <> key then single := false))
        c.Model.row;
      match (!single, !neuron) with
      | true, Some (abs, j) ->
          let y_iv = bounds.Bounds.y.(abs).(j)
          and dy_iv = bounds.Bounds.dy.(abs).(j) in
          let nv = Hashtbl.find enc.Encode.vars (abs, j) in
          let worst = ref 0.0 in
          List.iter
            (fun yv ->
              List.iter
                (fun dyv ->
                  let value_of v =
                    if v = nv.Encode.y then yv
                    else if v = nv.Encode.dy then dyv
                    else if nv.Encode.x = Some v then relu yv
                    else relu (yv +. dyv) -. relu yv
                  in
                  match row_violation c value_of with
                  | Some d when d > !worst -> worst := d
                  | _ -> ())
                (grid dy_iv))
            (grid y_iv);
          if !worst > 0.0 then
            add
              (Diag.make Diag.Error ~pass ~code:"unsound-relaxation"
                 ~loc:(Diag.loc ~row:ci ~neuron:(abs, j) name)
                 (Printf.sprintf
                    "true ReLU semantics violates the relaxation row by %g"
                    !worst))
      | _ -> ())
    (Model.constrs model);
  List.rev !diags

(* --- BTNE twin symmetry ------------------------------------------- *)

let btne ?(name = "btne") (enc : Encode.btne_enc) =
  let diags = ref [] in
  let add sev code neuron msg =
    diags :=
      Diag.make sev ~pass ~code ~loc:(Diag.loc ?neuron name) msg :: !diags
  in
  let model = enc.Encode.model in
  let eq_bounds v w =
    Model.var_lo model v = Model.var_lo model w
    && Model.var_hi model v = Model.var_hi model w
  in
  Hashtbl.iter
    (fun key (cva : Encode.copy_vars) ->
      match Hashtbl.find_opt enc.Encode.copy_b key with
      | None ->
          add Diag.Error "twin-asymmetry" (Some key)
            "neuron encoded in copy a only"
      | Some cvb -> (
          if not (eq_bounds cva.Encode.cy cvb.Encode.cy) then
            add Diag.Error "twin-asymmetry" (Some key)
              "twin copies disagree on the y variable bounds";
          match (cva.Encode.cx, cvb.Encode.cx) with
          | None, None -> ()
          | Some xa, Some xb ->
              if not (eq_bounds xa xb) then
                add Diag.Error "twin-asymmetry" (Some key)
                  "twin copies disagree on the x variable bounds"
          | _ ->
              add Diag.Error "twin-asymmetry" (Some key)
                "ReLU encoded in one copy only"))
    enc.Encode.copy_a;
  Hashtbl.iter
    (fun key _ ->
      if not (Hashtbl.mem enc.Encode.copy_a key) then
        add Diag.Error "twin-asymmetry" (Some key)
          "neuron encoded in copy b only")
    enc.Encode.copy_b;
  Hashtbl.iter
    (fun key (sa : Encode.relu_split) ->
      match Hashtbl.find_opt enc.Encode.split_b key with
      | None ->
          add Diag.Error "twin-asymmetry" (Some key)
            "splittable ReLU recorded in copy a only"
      | Some sb ->
          if
            sa.Encode.sp_slack_hi <> sb.Encode.sp_slack_hi
            || (not (I.equal sa.Encode.sp_y_iv sb.Encode.sp_y_iv))
            || not (I.equal sa.Encode.sp_x_iv sb.Encode.sp_x_iv)
          then
            add Diag.Error "twin-asymmetry" (Some key)
              "split bookkeeping differs between the copies")
    enc.Encode.split_a;
  Hashtbl.iter
    (fun key _ ->
      if not (Hashtbl.mem enc.Encode.split_a key) then
        add Diag.Error "twin-asymmetry" (Some key)
          "splittable ReLU recorded in copy b only")
    enc.Encode.split_b;
  let ids l = List.sort_uniq compare (List.map fst l) in
  if ids enc.Encode.input_a <> ids enc.Encode.input_b then
    add Diag.Error "twin-asymmetry" None
      "input variable maps cover different neurons";
  List.rev !diags

(* --- empirical bound soundness ------------------------------------ *)

let bounds_soundness ?(name = "bounds") ?(samples = 32) ?(tol = 1e-6) net
    (b : Bounds.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dim = Nn.Network.input_dim net in
  if
    Array.length b.Bounds.input <> dim
    || Array.length b.Bounds.input_dist <> dim
  then begin
    add
      (Diag.make Diag.Error ~pass ~code:"shape-mismatch" ~loc:(Diag.loc name)
         "bound state input arrays do not match the network input dimension");
    List.rev !diags
  end
  else begin
    (* fixed-seed pseudo-random stream: reproducible samples *)
    let state = ref 0x2545F491 in
    let next () =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      float_of_int !state /. float_of_int 0x40000000
    in
    let pick (iv : I.t) u =
      let lo = Float.max iv.I.lo (-1e6) and hi = Float.min iv.I.hi 1e6 in
      if lo > hi then lo else lo +. (u *. (hi -. lo))
    in
    let within (iv : I.t) v =
      let eps = slack tol v in
      v >= iv.I.lo -. eps && v <= iv.I.hi +. eps
    in
    let seen = Hashtbl.create 32 in
    let report i j what iv v =
      if (not (within iv v)) && not (Hashtbl.mem seen (i, j, what)) then begin
        Hashtbl.replace seen (i, j, what) ();
        add
          (Diag.make Diag.Error ~pass ~code:"unsound-interval"
             ~loc:(Diag.loc ~neuron:(i, j) ~var:what name)
             (Printf.sprintf
                "concrete %s value %g escapes the stored interval %s" what v
                (I.to_string iv)))
      end
    in
    let check_sample xa xb =
      let d_ok = ref true in
      Array.iteri
        (fun k _ ->
          if not (within b.Bounds.input_dist.(k) (xb.(k) -. xa.(k))) then
            d_ok := false)
        xa;
      (* clipping can push the pair outside the certified perturbation
         set; such a sample says nothing about the bound state *)
      if !d_ok then begin
        let pres_a, posts_a = Nn.Network.forward_all net xa in
        let pres_b, posts_b = Nn.Network.forward_all net xb in
        Array.iteri
          (fun i pa ->
            Array.iteri
              (fun j v ->
                report i j "y" b.Bounds.y.(i).(j) v;
                report i j "x" b.Bounds.x.(i).(j) posts_a.(i).(j);
                report i j "dy" b.Bounds.dy.(i).(j) (pres_b.(i).(j) -. v);
                report i j "dx" b.Bounds.dx.(i).(j)
                  (posts_b.(i).(j) -. posts_a.(i).(j)))
              pa)
          pres_a
      end
    in
    let clip k v =
      let iv = b.Bounds.input.(k) in
      Float.max iv.I.lo (Float.min iv.I.hi v)
    in
    let mk fa fd =
      let xa = Array.init dim (fun k -> pick b.Bounds.input.(k) (fa k)) in
      let xb =
        Array.init dim (fun k ->
            clip k (xa.(k) +. pick b.Bounds.input_dist.(k) (fd k)))
      in
      check_sample xa xb
    in
    (* corner cases first, then the pseudo-random bulk *)
    mk (fun _ -> 0.5) (fun _ -> 0.5);
    mk (fun _ -> 0.0) (fun _ -> 1.0);
    mk (fun _ -> 1.0) (fun _ -> 0.0);
    for _ = 1 to Int.max 0 (samples - 3) do
      mk (fun _ -> next ()) (fun _ -> next ())
    done;
    List.rev !diags
  end
