(** Global opt-in audit switch and finding sink.

    Audit mode is off by default.  It is turned on by the [GRC_AUDIT]
    environment variable (any value except ["0"] or the empty string,
    read once at start-up) or programmatically with {!set}.  The switch
    also drives {!Lp.Simplex.audit_mode}, so enabling it makes every
    warm-started simplex solve cross-check itself against a cold solve.

    Passes stay pure (they return diagnostics); callers hand findings to
    {!report}, which prints them, keeps a global tally and fails loudly
    on Error-level findings. *)

val env_var : string
(** ["GRC_AUDIT"]. *)

val enabled : unit -> bool

val set : bool -> unit
(** Also updates {!Lp.Simplex.audit_mode}. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced, restoring it afterwards (also
    on exception). *)

type tally = {
  mutable reports : int;    (** {!report} calls with at least one finding *)
  mutable findings : int;   (** findings across all reports *)
  mutable errors : int;     (** Error-level findings across all reports *)
}

val tally : tally
(** Process-global counters (read-only outside this module). *)

val reset_tally : unit -> unit

val report : Diag.t list -> unit
(** No-op on [[]].  Otherwise: print every finding to stderr, update
    {!tally}, and raise {!Diag.Audit_failure} if any finding is
    Error-level. *)
