(** Independent verification of solver results against the original
    model — the certificate checker.

    The checker re-derives everything from the {!Lp.Model.t} the caller
    encoded, never from solver internals, so a bug in the simplex (or in
    its warm-start bookkeeping) cannot hide itself:

    - primal feasibility: every row satisfied at the reported point;
    - bound satisfaction: every variable inside its (possibly
      overridden) box;
    - objective agreement: the reported objective equals the objective
      row evaluated at the point;
    - dual feasibility and complementary slackness: reduced costs
      recomputed from the solution's row multipliers carry the right
      sign for the position of each variable (and each row slack)
      relative to its bounds.

    All defects are Error-level: a failed certificate means the
    "optimal" answer is untrustworthy. *)

val default_tol : float
(** Feasibility/agreement tolerance (1e-6), scaled by the local
    magnitudes being compared. *)

val dual_tol : float
(** Tolerance for dual sign conditions (1e-5). *)

val check_point :
  ?tol:float ->
  ?name:string ->
  ?lo:float array ->
  ?hi:float array ->
  ?objective:Lp.Model.dir * (int * float) list ->
  model:Lp.Model.t ->
  obj:float ->
  float array ->
  Diag.t list
(** [check_point ~model ~obj x] verifies primal feasibility, bound
    satisfaction and objective agreement of the claimed optimal point
    [x] with objective value [obj].  [lo]/[hi] override the model's
    structural bounds (as in {!Lp.Simplex.solve_compiled}); [objective]
    overrides the model's objective with constant term 0. *)

val check :
  ?tol:float ->
  ?name:string ->
  ?lo:float array ->
  ?hi:float array ->
  ?objective:Lp.Model.dir * (int * float) list ->
  model:Lp.Model.t ->
  Lp.Simplex.solution ->
  Diag.t list
(** Full certificate check of a simplex solution.  Solutions whose
    status is not [Optimal] claim nothing and produce no findings; for
    [Optimal] solutions this is {!check_point} plus the dual
    feasibility / complementary-slackness conditions recomputed from
    [solution.duals]. *)
