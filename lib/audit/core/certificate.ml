module Model = Lp.Model

let default_tol = 1e-6

let dual_tol = 1e-5

let structural_bounds ?lo ?hi model =
  let n = Model.n_vars model in
  let get dflt = function
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Certificate: bounds length mismatch";
        a
    | None -> Array.init n dflt
  in
  (get (Model.var_lo model) lo, get (Model.var_hi model) hi)

let objective_row ?objective model =
  match objective with
  | Some (dir, terms) -> (dir, 0.0, terms)
  | None -> Model.objective model

let check_point ?(tol = default_tol) ?(name = "model") ?lo ?hi ?objective
    ~model ~obj x =
  let diags = ref [] in
  let add ?row ?var code message =
    diags :=
      Diag.make Diag.Error ~pass:"certificate" ~code
        ~loc:(Diag.loc ?row ?var name)
        message
      :: !diags
  in
  let n = Model.n_vars model in
  if Array.length x <> n then begin
    add "solution-shape"
      (Printf.sprintf "solution has %d entries, model has %d variables"
         (Array.length x) n);
    List.rev !diags
  end
  else begin
    let lo, hi = structural_bounds ?lo ?hi model in
    for j = 0 to n - 1 do
      let v = x.(j) in
      if not (Float.is_finite v) then
        add ~var:(Model.var_name model j) "nonfinite-solution"
          (Printf.sprintf "value %g" v)
      else begin
        let btol b = tol *. Float.max 1.0 (Float.abs b) in
        if v < lo.(j) -. btol lo.(j) then
          add ~var:(Model.var_name model j) "bound-violation"
            (Printf.sprintf "value %g below lower bound %g" v lo.(j));
        if v > hi.(j) +. btol hi.(j) then
          add ~var:(Model.var_name model j) "bound-violation"
            (Printf.sprintf "value %g above upper bound %g" v hi.(j))
      end
    done;
    Array.iteri
      (fun i (c : Model.constr) ->
        let acc = ref 0.0 and mass = ref 0.0 in
        List.iter
          (fun (j, coeff) ->
            let t = coeff *. x.(j) in
            acc := !acc +. t;
            mass := !mass +. Float.abs t)
          c.Model.row;
        let rtol = tol *. Float.max 1.0 !mass in
        let violated =
          match c.Model.sense with
          | Model.Le -> !acc > c.Model.rhs +. rtol
          | Model.Ge -> !acc < c.Model.rhs -. rtol
          | Model.Eq -> Float.abs (!acc -. c.Model.rhs) > rtol
        in
        if violated then
          add ~row:i "row-violation"
            (Printf.sprintf "activity %g violates row (rhs %g)" !acc
               c.Model.rhs))
      (Model.constrs model);
    (* objective agreement *)
    let _, const, terms = objective_row ?objective model in
    let expected =
      List.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) const terms
    in
    if
      Float.is_finite obj
      && Float.abs (obj -. expected) > tol *. Float.max 1.0 (Float.abs expected)
    then
      add "objective-mismatch"
        (Printf.sprintf
           "reported objective %g but the objective row evaluates to %g at \
            the solution"
           obj expected);
    if not (Float.is_finite obj) then
      add "objective-mismatch" (Printf.sprintf "reported objective %g" obj);
    Diag.sort (List.rev !diags)
  end

(* Dual feasibility and complementary slackness.  The solver reports row
   multipliers [pi] in the minimisation sense (the internal cost is the
   negated objective for Maximize models).  With every row written as
   [a.x + s = rhs], [s] bounded by sense, the reduced cost of a column
   is [d_j = c~_j - pi . A_j] and of a row slack [-pi_i]; at a
   minimisation optimum a nonbasic-at-lower variable needs [d >= 0], at
   upper [d <= 0], and a variable strictly inside its bounds [d = 0]. *)
let check_duals ~tol ~name ?lo ?hi ?objective ~model (x : float array)
    (pi : float array) =
  let diags = ref [] in
  let add ?row ?var code message =
    diags :=
      Diag.make Diag.Error ~pass:"certificate" ~code
        ~loc:(Diag.loc ?row ?var name)
        message
      :: !diags
  in
  let n = Model.n_vars model in
  let constrs = Model.constrs model in
  let dir, _, terms = objective_row ?objective model in
  let negate = dir = Model.Maximize in
  let d = Array.make n 0.0 in
  let mass = Array.make n 0.0 in
  List.iter
    (fun (j, c) ->
      let c = if negate then -.c else c in
      d.(j) <- d.(j) +. c;
      mass.(j) <- mass.(j) +. Float.abs c)
    terms;
  Array.iteri
    (fun i (c : Model.constr) ->
      if Float.is_finite pi.(i) then
        List.iter
          (fun (j, coeff) ->
            d.(j) <- d.(j) -. (pi.(i) *. coeff);
            mass.(j) <- mass.(j) +. Float.abs (pi.(i) *. coeff))
          c.Model.row
      else
        add ~row:i "nonfinite-dual" (Printf.sprintf "multiplier %g" pi.(i)))
    constrs;
  let lo, hi = structural_bounds ?lo ?hi model in
  for j = 0 to n - 1 do
    let dtol = dual_tol *. Float.max 1.0 mass.(j) in
    let btol b = tol *. Float.max 1.0 (Float.abs b) in
    let at_lo = x.(j) <= lo.(j) +. btol lo.(j) in
    let at_hi = x.(j) >= hi.(j) -. btol hi.(j) in
    let bad =
      if at_lo && at_hi then false (* fixed: any sign *)
      else if at_lo then d.(j) < -.dtol
      else if at_hi then d.(j) > dtol
      else Float.abs d.(j) > dtol
    in
    if bad then
      add ~var:(Model.var_name model j) "dual-infeasible"
        (Printf.sprintf
           "reduced cost %g has the wrong sign for value %g in [%g, %g]"
           d.(j) x.(j) lo.(j) hi.(j))
  done;
  (* row slack sign / complementary slackness *)
  Array.iteri
    (fun i (c : Model.constr) ->
      if Float.is_finite pi.(i) then begin
        let acc = ref 0.0 and m = ref 0.0 in
        List.iter
          (fun (j, coeff) ->
            acc := !acc +. (coeff *. x.(j));
            m := !m +. Float.abs (coeff *. x.(j)))
          c.Model.row;
        let slack = c.Model.rhs -. !acc in
        let stol = tol *. Float.max 1.0 !m in
        let dtol = dual_tol *. Float.max 1.0 (Float.abs pi.(i)) in
        match c.Model.sense with
        | Model.Eq -> ()
        | Model.Le ->
            (* s in [0, inf): tight -> pi <= 0 is not required, only
               d_s = -pi >= 0 at lower, i.e. pi <= dtol; loose -> pi = 0 *)
            if slack > stol then begin
              if Float.abs pi.(i) > dtol then
                add ~row:i "complementary-slackness"
                  (Printf.sprintf
                     "slack %g is loose but the multiplier is %g" slack
                     pi.(i))
            end
            else if pi.(i) > dual_tol *. Float.max 1.0 (Float.abs pi.(i))
            then
              add ~row:i "dual-sign"
                (Printf.sprintf
                   "binding <= row has multiplier %g > 0 (minimisation \
                    sense)"
                   pi.(i))
        | Model.Ge ->
            if slack < -.stol then begin
              if Float.abs pi.(i) > dtol then
                add ~row:i "complementary-slackness"
                  (Printf.sprintf
                     "slack %g is loose but the multiplier is %g" slack
                     pi.(i))
            end
            else if pi.(i) < -.(dual_tol *. Float.max 1.0 (Float.abs pi.(i)))
            then
              add ~row:i "dual-sign"
                (Printf.sprintf
                   "binding >= row has multiplier %g < 0 (minimisation \
                    sense)"
                   pi.(i))
      end)
    constrs;
  List.rev !diags

let check ?(tol = default_tol) ?(name = "model") ?lo ?hi ?objective ~model
    (sol : Lp.Simplex.solution) =
  match sol.Lp.Simplex.status with
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded
  | Lp.Simplex.Iteration_limit -> []
  | Lp.Simplex.Optimal ->
      let primal =
        check_point ~tol ~name ?lo ?hi ?objective ~model
          ~obj:sol.Lp.Simplex.obj sol.Lp.Simplex.x
      in
      let duals = sol.Lp.Simplex.duals in
      let dual_diags =
        if Array.length duals <> Model.n_constrs model then
          [ Diag.make Diag.Info ~pass:"certificate" ~code:"missing-duals"
              ~loc:(Diag.loc name)
              "solution carries no row multipliers; dual conditions not \
               checked" ]
        else if primal <> [] then []
        else
          check_duals ~tol ~name ?lo ?hi ?objective ~model sol.Lp.Simplex.x
            duals
      in
      Diag.sort (primal @ dual_diags)
