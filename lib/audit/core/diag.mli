(** Structured audit diagnostics.

    Every audit pass (model linter, encoding auditor, certificate
    checker) reports its findings as a list of {!t}: a severity, a
    stable diagnostic code, a source location inside the artefact being
    audited (model name, row index, variable name, neuron id), and a
    human-readable message.  Passes never print or raise themselves;
    presentation and failure policy live in {!Mode}. *)

type severity = Error | Warn | Info
(** [Error]: the artefact is wrong (unsound encoding, infeasible model,
    certificate mismatch) — audit mode fails loudly on these.
    [Warn]: suspicious but not provably wrong (numeric conditioning,
    duplicate coefficients).  [Info]: redundancy that costs solver time
    but cannot affect results (vacuous rows, unused columns). *)

type location = {
  model : string;               (** model / encoding name *)
  row : int option;             (** constraint index, 0-based *)
  var : string option;          (** variable name *)
  neuron : (int * int) option;  (** (absolute layer, neuron id) *)
}

val loc : ?row:int -> ?var:string -> ?neuron:int * int -> string -> location

type t = {
  severity : severity;
  pass : string;       (** producing pass: "lint", "encoding", "certificate" *)
  code : string;       (** stable machine-readable code, e.g. "infeasible-row" *)
  location : location;
  message : string;
}

val make :
  severity -> pass:string -> code:string -> loc:location -> string -> t

val severity_label : severity -> string

val pp : Format.formatter -> t -> unit
(** One line: [severity pass/code @ location: message]. *)

val to_string : t -> string

val count : severity -> t list -> int

val errors : t list -> t list
(** Error-level findings only. *)

val sort : t list -> t list
(** Stable sort, most severe first. *)

exception Audit_failure of t list
(** Raised by {!Mode.report} when audit mode surfaces Error-level
    findings; carries every finding of the failing report. *)
