type severity = Error | Warn | Info

type location = {
  model : string;
  row : int option;
  var : string option;
  neuron : (int * int) option;
}

let loc ?row ?var ?neuron model = { model; row; var; neuron }

type t = {
  severity : severity;
  pass : string;
  code : string;
  location : location;
  message : string;
}

let make severity ~pass ~code ~loc message =
  { severity; pass; code; location = loc; message }

let severity_label = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

let rank = function Error -> 0 | Warn -> 1 | Info -> 2

let pp_location fmt l =
  Format.pp_print_string fmt l.model;
  (match l.row with
   | Some i -> Format.fprintf fmt ", row %d" i
   | None -> ());
  (match l.var with
   | Some v -> Format.fprintf fmt ", var %s" v
   | None -> ());
  match l.neuron with
  | Some (layer, j) -> Format.fprintf fmt ", neuron (%d,%d)" layer j
  | None -> ()

let pp fmt d =
  Format.fprintf fmt "%s %s/%s @@ %a: %s" (severity_label d.severity) d.pass
    d.code pp_location d.location d.message

let to_string d = Format.asprintf "%a" pp d

let count sev diags =
  List.length (List.filter (fun d -> d.severity = sev) diags)

let errors diags = List.filter (fun d -> d.severity = Error) diags

let sort diags =
  List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity))
    diags

exception Audit_failure of t list

let () =
  Printexc.register_printer (function
    | Audit_failure diags ->
        Some
          (Printf.sprintf "Audit_failure (%d error(s): %s)"
             (count Error diags)
             (String.concat "; " (List.map to_string (errors diags))))
    | _ -> None)
