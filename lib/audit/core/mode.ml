let env_var = "GRC_AUDIT"

let from_env =
  match Sys.getenv_opt env_var with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let state = ref from_env

(* keep the solver's warm-start self-check in step with the switch *)
let () = Lp.Simplex.audit_mode := from_env

let enabled () = !state

let set b =
  state := b;
  Lp.Simplex.audit_mode := b

let with_enabled b f =
  let saved = !state in
  set b;
  Fun.protect ~finally:(fun () -> set saved) f

type tally = {
  mutable reports : int;
  mutable findings : int;
  mutable errors : int;
}

let tally = { reports = 0; findings = 0; errors = 0 }

let reset_tally () =
  tally.reports <- 0;
  tally.findings <- 0;
  tally.errors <- 0

let report diags =
  match diags with
  | [] -> ()
  | _ ->
      tally.reports <- tally.reports + 1;
      tally.findings <- tally.findings + List.length diags;
      let errs = Diag.errors diags in
      tally.errors <- tally.errors + List.length errs;
      List.iter
        (fun d -> Format.eprintf "[audit] %a@." Diag.pp d)
        (Diag.sort diags);
      if errs <> [] then raise (Diag.Audit_failure diags)
