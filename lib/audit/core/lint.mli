(** Static analysis over {!Lp.Model.t} — the model linter.

    Runs before any solve and flags defects an encoder can introduce
    silently:

    - non-finite ([NaN]/[inf]) coefficients in rows or the objective
      (Error);
    - rows whose activity range over the variable boxes cannot satisfy
      them (Error), or always satisfies them (Info: vacuous);
    - equal-coefficient rows with contradictory equalities (Error),
      duplicate rows (Warn) and trivially dominated rows (Info);
    - duplicate variables within a row (Warn) and zero coefficients
      (Info);
    - numeric conditioning: per-row coefficient magnitude ratio above
      {!conditioning_limit} (Warn) and nonzero coefficients below
      {!pivot_tol}, which the simplex will effectively drop (Warn);
    - unused columns — variables in no row and not in the objective
      (Info) — and fixed columns ([lo = hi], Info), the patterns a
      presolve would eliminate.

    The linter never mutates the model and performs no solves; it is
    O(nnz + rows log rows). *)

val pivot_tol : float
(** Mirrors the simplex pivot tolerance (1e-9): nonzero coefficients
    below it are numerically invisible to the solver. *)

val conditioning_limit : float
(** Per-row magnitude-ratio threshold for the conditioning warning
    (1e8). *)

val model : ?name:string -> Lp.Model.t -> Diag.t list
(** [model ~name m] returns all findings, most severe first.  [name]
    labels the diagnostics' locations (default ["model"]). *)
