module Model = Lp.Model

let pivot_tol = 1e-9

let conditioning_limit = 1e8

let activity_tol = 1e-9

(* Minimum and maximum of [row . x] over the variable boxes. *)
let activity m row =
  List.fold_left
    (fun (amin, amax) (j, c) ->
      let lo = Model.var_lo m j and hi = Model.var_hi m j in
      if c >= 0.0 then (amin +. (c *. lo), amax +. (c *. hi))
      else (amin +. (c *. hi), amax +. (c *. lo)))
    (0.0, 0.0) row

(* Canonical row signature for duplicate detection: sorted variable
   order, duplicate entries merged, exact zeros dropped. *)
let signature (row : (Model.var * float) list) =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) row in
  let rec merge = function
    | (i, a) :: (i', b) :: rest when i = i' -> merge ((i, a +. b) :: rest)
    | (i, a) :: rest -> if a = 0.0 then merge rest else (i, a) :: merge rest
    | [] -> []
  in
  merge sorted

let sense_label = function
  | Model.Le -> "<="
  | Model.Ge -> ">="
  | Model.Eq -> "="

let model ?(name = "model") m =
  let diags = ref [] in
  let add severity ?row ?var ?neuron code message =
    diags :=
      Diag.make severity ~pass:"lint" ~code
        ~loc:(Diag.loc ?row ?var ?neuron name)
        message
      :: !diags
  in
  let n = Model.n_vars m in
  let constrs = Model.constrs m in
  let used = Array.make n false in
  (* --- per-row checks --- *)
  Array.iteri
    (fun i (c : Model.constr) ->
      let seen = Hashtbl.create 8 in
      let abs_min = ref infinity and abs_max = ref 0.0 in
      let finite = ref true in
      List.iter
        (fun (j, coeff) ->
          used.(j) <- true;
          let var = Model.var_name m j in
          if Float.is_nan coeff || Float.abs coeff = infinity then begin
            finite := false;
            add Diag.Error ~row:i ~var "nonfinite-coefficient"
              (Printf.sprintf "coefficient %g of %s" coeff var)
          end
          else if coeff = 0.0 then
            add Diag.Info ~row:i ~var "zero-coefficient"
              (Printf.sprintf "zero coefficient of %s" var)
          else begin
            let a = Float.abs coeff in
            if a < pivot_tol then
              add Diag.Warn ~row:i ~var "negligible-coefficient"
                (Printf.sprintf
                   "coefficient %g of %s is below the simplex pivot \
                    tolerance %g and will be dropped"
                   coeff var pivot_tol);
            if a < !abs_min then abs_min := a;
            if a > !abs_max then abs_max := a
          end;
          if Hashtbl.mem seen j then
            add Diag.Warn ~row:i ~var "duplicate-coefficient"
              (Printf.sprintf "%s appears more than once in the row" var)
          else Hashtbl.add seen j ())
        c.Model.row;
      if Float.is_nan c.Model.rhs then
        add Diag.Error ~row:i "nonfinite-rhs" "NaN right-hand side"
      else if Float.abs c.Model.rhs = infinity then begin
        let unsatisfiable =
          match c.Model.sense with
          | Model.Le -> c.Model.rhs = neg_infinity
          | Model.Ge -> c.Model.rhs = infinity
          | Model.Eq -> true
        in
        if unsatisfiable then
          add Diag.Error ~row:i "infeasible-row"
            (Printf.sprintf "row %s %g cannot be satisfied"
               (sense_label c.Model.sense) c.Model.rhs)
        else
          add Diag.Info ~row:i "vacuous-row"
            (Printf.sprintf "infinite rhs makes row %s %g trivial"
               (sense_label c.Model.sense) c.Model.rhs)
      end;
      if !finite && Float.is_finite c.Model.rhs then begin
        if !abs_max > 0.0 && !abs_max /. !abs_min > conditioning_limit then
          add Diag.Warn ~row:i "ill-conditioned-row"
            (Printf.sprintf
               "coefficient magnitudes span [%g, %g] (ratio %.1e > %.0e)"
               !abs_min !abs_max (!abs_max /. !abs_min) conditioning_limit);
        let amin, amax = activity m c.Model.row in
        let tol = activity_tol *. Float.max 1.0 (Float.abs c.Model.rhs) in
        let infeasible, vacuous =
          match c.Model.sense with
          | Model.Le ->
              (amin > c.Model.rhs +. tol, amax <= c.Model.rhs +. tol)
          | Model.Ge ->
              (amax < c.Model.rhs -. tol, amin >= c.Model.rhs -. tol)
          | Model.Eq ->
              ( amin > c.Model.rhs +. tol || amax < c.Model.rhs -. tol,
                amin = amax && Float.abs (amin -. c.Model.rhs) <= tol )
        in
        if infeasible then
          add Diag.Error ~row:i "infeasible-row"
            (Printf.sprintf
               "activity range [%g, %g] cannot satisfy %s %g over the \
                variable boxes"
               amin amax (sense_label c.Model.sense) c.Model.rhs)
        else if vacuous then
          add Diag.Info ~row:i "vacuous-row"
            (Printf.sprintf
               "activity range [%g, %g] always satisfies %s %g; the row is \
                redundant"
               amin amax (sense_label c.Model.sense) c.Model.rhs)
      end)
    constrs;
  (* --- duplicate / dominated / conflicting rows --- *)
  let by_sig : ((Model.var * float) list, (int * Model.constr) list ref)
      Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri
    (fun i (c : Model.constr) ->
      let key = signature c.Model.row in
      match Hashtbl.find_opt by_sig key with
      | Some l -> l := (i, c) :: !l
      | None -> Hashtbl.add by_sig key (ref [ (i, c) ]))
    constrs;
  Hashtbl.iter
    (fun _ group ->
      match !group with
      | [] | [ _ ] -> ()
      | rows ->
          let rows = List.rev rows in
          (* compare each row against the earliest row with the same
             coefficients and sense *)
          let first_of = Hashtbl.create 4 in
          List.iter
            (fun (i, (c : Model.constr)) ->
              match Hashtbl.find_opt first_of c.Model.sense with
              | None -> Hashtbl.add first_of c.Model.sense (i, c)
              | Some (i0, (c0 : Model.constr)) ->
                  let rhs = c.Model.rhs and rhs0 = c0.Model.rhs in
                  let tol =
                    activity_tol *. Float.max 1.0 (Float.abs rhs0)
                  in
                  if Float.abs (rhs -. rhs0) <= tol then
                    add Diag.Warn ~row:i "duplicate-row"
                      (Printf.sprintf "identical to row %d" i0)
                  else begin
                    match c.Model.sense with
                    | Model.Eq ->
                        add Diag.Error ~row:i "conflicting-rows"
                          (Printf.sprintf
                             "equality rhs %g contradicts row %d (rhs %g)"
                             rhs i0 rhs0)
                    | Model.Le ->
                        let dom, dom_by, by =
                          if rhs > rhs0 then (i, rhs, i0) else (i0, rhs0, i)
                        in
                        add Diag.Info ~row:dom "dominated-row"
                          (Printf.sprintf
                             "rhs %g is implied by the tighter row %d" dom_by
                             by)
                    | Model.Ge ->
                        let dom, dom_by, by =
                          if rhs < rhs0 then (i, rhs, i0) else (i0, rhs0, i)
                        in
                        add Diag.Info ~row:dom "dominated-row"
                          (Printf.sprintf
                             "rhs %g is implied by the tighter row %d" dom_by
                             by)
                  end)
            rows)
    by_sig;
  (* --- per-variable checks --- *)
  let _, obj_const, obj = Model.objective m in
  if Float.is_nan obj_const || Float.abs obj_const = infinity then
    add Diag.Error "nonfinite-objective"
      (Printf.sprintf "objective constant %g" obj_const);
  let obj_seen = Hashtbl.create 16 in
  List.iter
    (fun (j, coeff) ->
      used.(j) <- true;
      let var = Model.var_name m j in
      if Float.is_nan coeff || Float.abs coeff = infinity then
        add Diag.Error ~var "nonfinite-objective"
          (Printf.sprintf "objective coefficient %g of %s" coeff var);
      if Hashtbl.mem obj_seen j then
        add Diag.Warn ~var "duplicate-coefficient"
          (Printf.sprintf "%s appears more than once in the objective" var)
      else Hashtbl.add obj_seen j ())
    obj;
  for j = 0 to n - 1 do
    let var = Model.var_name m j in
    let lo = Model.var_lo m j and hi = Model.var_hi m j in
    if Float.is_nan lo || Float.is_nan hi then
      add Diag.Error ~var "nonfinite-bound"
        (Printf.sprintf "NaN bound on %s" var);
    if lo > hi then
      add Diag.Error ~var "empty-bound-range"
        (Printf.sprintf "%s has empty range [%g, %g]" var lo hi);
    if not used.(j) then
      add Diag.Info ~var "unused-column"
        (Printf.sprintf "%s appears in no row and not in the objective" var)
    else if lo = hi then
      add Diag.Info ~var "fixed-column"
        (Printf.sprintf "%s is fixed at %g; presolve would substitute it"
           var lo)
  done;
  Diag.sort (List.rev !diags)
