(** Bounded-variable primal/dual simplex.

    Two-phase revised simplex over a sparse LU-factorised basis
    ({!Linalg.Lu}): FTRAN/BTRAN triangular solves against sparse
    right-hand sides, an eta-file update per pivot, and adaptive
    refactorisation triggered by eta-file growth and a numerical
    stability estimate ({!basis_config}).  Dantzig pricing with a
    Bland's-rule fallback and bound-flip pivots.  The historical dense
    explicit inverse survives as a selectable reference representation
    ({!basis_kind}) and as the counted fallback when the LU declines a
    basis.  Designed for the moderate-size, mostly-finitely-bounded,
    very sparse LPs produced by robustness certification.

    Besides one-shot solves, the module offers persistent {!session}s
    that keep the optimal basis factorised between solves: an
    objective-only hot start (re-price and run primal phase 2, covering
    the certifier's per-neuron min/max sweeps over one matrix) and a
    bound-change restart (nonbasic variables ride along with their
    bounds and a dual-simplex phase recovers feasibility, covering
    branch & bound child nodes and case-splitting re-solves).

    Integer marks on variables are ignored here; see {!module:Milp}. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit

type solution = {
  status : status;
  obj : float;      (** objective in the model's direction; meaningful only
                        when [status = Optimal] *)
  x : float array;  (** structural variable values, model index order *)
  pivots : int;     (** simplex pivots performed by this solve *)
  duals : float array;
      (** row multipliers at the optimum, one per constraint, in the
          {e minimisation} sense (the internal cost is the negated
          objective for [Maximize] solves): reduced costs
          [c~_j - duals . A_j] satisfy the usual sign conditions at a
          minimisation optimum.  Empty unless [status = Optimal].
          Consumed by the independent certificate checker
          ([Audit_core.Certificate]). *)
}

(** {1 Basis representation}

    Process-wide knobs, read when a solver state is built; existing
    states keep the representation they started with. *)

type basis_kind =
  | Dense_inverse  (** explicit dense B^-1, O(m^2) per pivot *)
  | Sparse_lu      (** sparse LU + eta file, O(nnz) per pivot *)

val basis_kind : basis_kind ref
(** Representation for new solver states.  Defaults to [Sparse_lu];
    initialised from the [GRC_LP_BASIS] environment variable
    (["dense"] selects the reference dense inverse — used by the bench
    harness and check.sh to measure and cross-check the two paths). *)

type basis_config = {
  mutable eta_max : int;
      (** refactorise once this many eta terms accumulate; [0] (the
          default) means adaptive: [min 64 (max 4 (m/2))] *)
  mutable eta_growth : float;
      (** refactorise when the eta file holds more than this multiple
          of the LU factor nonzeros (default 2.0) *)
  mutable stab_tol : float;
      (** relative pivot magnitude below which an eta update marks the
          factorisation unstable, forcing a refactorisation before the
          next pivot (default 1e-7) *)
  mutable session_solves_cap : int;
      (** safety net: a warm session refactorises at least every this
          many solves even if no adaptive trigger fired, bounding drift
          of the incrementally maintained basic values (default 256) *)
}

val basis_config : basis_config
(** Live adaptive-refactorisation thresholds (sparse path only; the
    dense reference path keeps its historical fixed cadences).  Mutate
    before solving to tune. *)

val time_kernels : bool ref
(** When on, FTRAN/BTRAN wall time is accumulated into
    {!kernel_times} (single-domain accounting; default off). *)

val kernel_times : unit -> float * float
(** [(ftran_seconds, btran_seconds)] accumulated while
    {!time_kernels} was on. *)

val reset_kernel_times : unit -> unit

val audit_mode : bool ref
(** Opt-in self-check switch, initialised from the [GRC_AUDIT]
    environment variable (any value but ["0"]/empty) and kept in step
    with [Audit_core.Mode.set].  When on, every {!solve_session} result
    served from a retained basis is cross-checked against a cold
    {!solve_compiled} of the same query; disagreement drops the basis,
    returns the cold result and increments
    [session_stats.audit_mismatches]. *)

val solve : ?max_iter:int -> Model.t -> solution

(** {1 Compiled form}

    Branch & bound re-solves the same constraint matrix under different
    bounds thousands of times; [compile] extracts the matrix once. *)

type compiled

val compile : Model.t -> compiled

val n_struct : compiled -> int

val default_bounds : compiled -> float array * float array
(** Fresh copies of the model's structural bounds at [compile] time. *)

val solve_compiled :
  ?max_iter:int ->
  ?objective:Model.dir * (int * float) list ->
  compiled -> lo:float array -> hi:float array -> solution
(** Solve with overridden structural bounds (arrays of length
    [n_struct]).  [objective] replaces the model's objective (constant
    term 0) — certification solves many min/max queries over one
    encoded model.  The [compiled] value is not mutated and may be
    shared.  Every solve is cold (fresh basis); use a {!session} to
    amortise work across related solves. *)

(** {1 Sessions: warm-started solves}

    A session owns a mutable copy of the structural bounds and, after
    the first solve, the factorised optimal basis.  Subsequent solves
    reuse it:

    - {b objective swap} (bounds untouched): the basis stays primal
      feasible, so only phase 2 runs — no phase 1, no refactorisation;
    - {b bound change} ({!set_bounds} / {!set_var_bounds}): nonbasic
      variables move with their bounds, basic values are updated
      incrementally, and a dual-simplex phase restores feasibility
      before phase 2 — again skipping phase 1 and the O(m³) refactor.

    Any numerically suspect warm start falls back to a cold solve
    automatically, so results never depend on the solve history.  A
    session is single-threaded; create one per domain worker (the
    underlying [compiled] may be shared freely). *)

type session

val create_session :
  ?lo:float array -> ?hi:float array -> compiled -> session
(** Bounds default to the model's bounds at compile time; the arrays
    are copied. *)

val set_var_bounds : session -> int -> lo:float -> hi:float -> unit
(** Replace one structural variable's bounds.  Cheap: O(m·nnz(col))
    when the variable is nonbasic, O(1) when basic.  An empty range
    ([lo > hi]) makes subsequent solves report [Infeasible] until the
    range is widened again. *)

val set_bounds : session -> lo:float array -> hi:float array -> unit
(** Replace all structural bounds (length [n_struct]); only entries
    that actually changed are touched. *)

val session_bounds : session -> float array * float array
(** Fresh copies of the session's current structural bounds. *)

val solve_session :
  ?max_iter:int ->
  ?objective:Model.dir * (int * float) list ->
  session -> solution
(** Solve under the session's current bounds, warm-starting from the
    retained basis whenever possible.  [objective] as in
    {!solve_compiled}.  Statuses and objectives agree with a cold
    {!solve_compiled} on the same bounds and objective (up to solver
    tolerances). *)

type session_stats = {
  mutable solves : int;          (** total [solve_session] calls *)
  mutable cold_solves : int;     (** full two-phase solves *)
  mutable warm_solves : int;     (** solves served from the retained basis *)
  mutable dual_restarts : int;   (** warm solves that needed a dual phase *)
  mutable fallbacks : int;       (** warm attempts abandoned to a cold solve *)
  mutable total_pivots : int;    (** pivots across all solves *)
  mutable audit_mismatches : int;
      (** warm results contradicted by the audit-mode cold cross-check *)
  mutable refactors : int;
      (** basis refactorisations beyond the initial build (also counted
          process-wide as the "lp:refactor" metric and as a ["refactor"]
          count on trace spans) *)
  mutable eta_updates : int;     (** eta terms pushed (sparse basis) *)
  mutable dense_fallbacks : int;
      (** LU factorisation failures that fell back to the dense
          inverse; 0 on every benchmarked net (asserted by lp-bench) *)
}

val session_stats : session -> session_stats
(** Live counters (not a snapshot); treat as read-only. *)
