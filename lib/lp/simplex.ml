type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  obj : float;
  x : float array;
  pivots : int;
  duals : float array;
}

(* Opt-in audit mode (GRC_AUDIT, or Audit_core.Mode.set): every
   warm-started session solve is cross-checked against a cold solve and
   the retained basis is dropped on disagreement. *)
let audit_mode =
  ref
    (match Sys.getenv_opt "GRC_AUDIT" with
     | None | Some "" | Some "0" -> false
     | Some _ -> true)

type compiled = {
  m : int;                                   (* constraint rows *)
  n : int;                                   (* structural variables *)
  cols : (int array * float array) array;    (* n structural + m slack columns *)
  b : float array;
  c : float array;                           (* minimisation costs, length n *)
  obj_const : float;
  negate : bool;                             (* original direction was Maximize *)
  slack_lo : float array;
  slack_hi : float array;
  model_lo : float array;
  model_hi : float array;
}

(* Process-wide solve accounting (Obs.Metrics: one atomic per solve,
   always on) and opt-in tracing spans (near-free while disabled). *)
let m_solves = Obs.Metrics.counter "simplex.solves"
let m_pivots = Obs.Metrics.counter "simplex.pivots"
let m_warm = Obs.Metrics.counter "simplex.warm_solves"
let m_cold = Obs.Metrics.counter "simplex.cold_solves"
let m_dual_restarts = Obs.Metrics.counter "simplex.dual_restarts"
let m_fallbacks = Obs.Metrics.counter "simplex.fallbacks"
let m_phase1 = Obs.Metrics.counter "simplex.phase1_runs"
let m_phase2 = Obs.Metrics.counter "simplex.phase2_runs"
let m_ftrans = Obs.Metrics.counter "simplex.ftrans"
let m_btrans = Obs.Metrics.counter "simplex.btrans"
let m_lu_factors = Obs.Metrics.counter "simplex.lu_factors"
let m_eta_updates = Obs.Metrics.counter "simplex.eta_updates"
let m_refactors = Obs.Metrics.counter "lp:refactor"
let m_dense_fallbacks = Obs.Metrics.counter "simplex.dense_fallbacks"

let feas_tol = 1e-7
let opt_tol = 1e-7
let pivot_tol = 1e-9

(* Cadences for the dense reference path only; the sparse LU basis
   refactorises adaptively (see [basis_stale]). *)
let refactor_period = 100
let session_refactor_solves = 16

(* --- basis representation ----------------------------------------- *)

type basis_kind = Dense_inverse | Sparse_lu

let basis_kind =
  ref
    (match Sys.getenv_opt "GRC_LP_BASIS" with
     | Some "dense" -> Dense_inverse
     | _ -> Sparse_lu)

type basis_config = {
  mutable eta_max : int;
  mutable eta_growth : float;
  mutable stab_tol : float;
  mutable session_solves_cap : int;
}

let basis_config =
  { eta_max = 0; eta_growth = 2.0; stab_tol = 1e-7; session_solves_cap = 256 }

(* Opt-in FTRAN/BTRAN wall-time accounting for the bench harness; the
   accumulators are plain refs, so only meaningful single-domain. *)
let time_kernels = ref false
let ftran_seconds = ref 0.0
let btran_seconds = ref 0.0

let reset_kernel_times () =
  ftran_seconds := 0.0;
  btran_seconds := 0.0

let kernel_times () = (!ftran_seconds, !btran_seconds)

let compile model =
  let n = Model.n_vars model in
  let constrs = Model.constrs model in
  let m = Array.length constrs in
  let b = Array.map (fun (c : Model.constr) -> c.rhs) constrs in
  (* gather structural columns *)
  let buckets = Array.make n [] in
  Array.iteri
    (fun i (c : Model.constr) ->
      List.iter (fun (j, v) -> buckets.(j) <- (i, v) :: buckets.(j)) c.row)
    constrs;
  let structural_col j =
    (* merge duplicate row entries, ascending row order *)
    let entries = List.sort (fun (a, _) (b, _) -> compare a b) buckets.(j) in
    let rec merge = function
      | (i, a) :: (i', b) :: rest when i = i' -> merge ((i, a +. b) :: rest)
      | (i, a) :: rest -> if a = 0.0 then merge rest else (i, a) :: merge rest
      | [] -> []
    in
    let entries = merge entries in
    (Array.of_list (List.map fst entries),
     Array.of_list (List.map snd entries))
  in
  let cols =
    Array.init (n + m) (fun j ->
        if j < n then structural_col j else ([| j - n |], [| 1.0 |]))
  in
  let slack_lo = Array.make m 0.0 and slack_hi = Array.make m 0.0 in
  Array.iteri
    (fun i (c : Model.constr) ->
      match c.sense with
      | Model.Le -> slack_lo.(i) <- 0.0; slack_hi.(i) <- infinity
      | Model.Ge -> slack_lo.(i) <- neg_infinity; slack_hi.(i) <- 0.0
      | Model.Eq -> slack_lo.(i) <- 0.0; slack_hi.(i) <- 0.0)
    constrs;
  let dir, obj_const, obj = Model.objective model in
  let negate = dir = Model.Maximize in
  let c = Array.make n 0.0 in
  List.iter
    (fun (j, v) -> c.(j) <- c.(j) +. (if negate then -.v else v))
    obj;
  let model_lo = Array.init n (Model.var_lo model) in
  let model_hi = Array.init n (Model.var_hi model) in
  { m; n; cols; b; c; obj_const; negate; slack_lo; slack_hi;
    model_lo; model_hi }

let n_struct cp = cp.n

let default_bounds cp = (Array.copy cp.model_lo, Array.copy cp.model_hi)

(* Per-solve objective parameters (the compiled matrix is shared). *)
type params = { pc : float array; pnegate : bool; pconst : float }

let params_of_objective cp = function
  | None -> { pc = cp.c; pnegate = cp.negate; pconst = cp.obj_const }
  | Some (dir, terms) ->
      let pnegate = dir = Model.Maximize in
      let pc = Array.make cp.n 0.0 in
      List.iter
        (fun (j, v) ->
          if j < 0 || j >= cp.n then
            invalid_arg "Simplex: objective variable out of range";
          pc.(j) <- pc.(j) +. (if pnegate then -.v else v))
        terms;
      { pc; pnegate; pconst = 0.0 }

(* Variable status. *)
type vstat = At_lower | At_upper | Free_zero | Basic

(* Mutable solver state.  Variables are indexed 0..nt-1 where
   [0, n)        structural,
   [n, n+m)      slacks,
   [n+m, nt)     artificials (phase 1 only; fixed to 0 afterwards). *)
(* The basis factorisation behind FTRAN/BTRAN: either the sparse LU of
   [Linalg.Lu] with its eta file (the default) or the historical dense
   explicit inverse, kept selectable as a reference for benchmarking
   and as the counted fallback when the LU rejects a basis. *)
type brep =
  | Bdense of float array array  (* m x m dense B^-1 *)
  | Bsparse of Linalg.Lu.t

type state = {
  cp : compiled;
  kind : basis_kind;          (* which representation refactor rebuilds *)
  nt : int;
  all_cols : (int array * float array) array;
  lo : float array;
  hi : float array;
  stat : vstat array;
  value : float array;        (* nonbasic values; basics live in xb *)
  basis : int array;          (* length m, var in each row *)
  pos : int array;            (* var -> basic row, or -1 *)
  mutable brep : brep;
  xb : float array;           (* basic variable values *)
  y : float array;            (* scratch: entering column in basis coords *)
  pi : float array;           (* scratch: simplex multipliers *)
  cb : float array;           (* scratch: basic costs, basis-row order *)
  rho : float array;          (* scratch: one row of B^-1 (dual pricing) *)
  mutable pivots : int;
  mutable refactors : int;         (* non-initial refactorisations *)
  mutable eta_updates : int;       (* eta terms pushed *)
  mutable dense_fallbacks : int;   (* LU factorisation failures *)
}

let ftran st col =
  let t0 = if !time_kernels then Obs.Clock.now () else 0.0 in
  (match st.brep with
   | Bsparse lu ->
       let idx, vals = col in
       Linalg.Lu.ftran_pair lu idx vals st.y
   | Bdense binv ->
       let m = st.cp.m in
       Array.fill st.y 0 m 0.0;
       let idx, vals = col in
       for k = 0 to Array.length idx - 1 do
         let r = idx.(k) and v = vals.(k) in
         for i = 0 to m - 1 do
           st.y.(i) <- st.y.(i) +. (binv.(i).(r) *. v)
         done
       done);
  Obs.Metrics.add m_ftrans 1;
  if !time_kernels then
    ftran_seconds := !ftran_seconds +. (Obs.Clock.now () -. t0)

(* pi = cB^T B^-1 for the given full cost vector *)
let compute_pi st cost =
  let t0 = if !time_kernels then Obs.Clock.now () else 0.0 in
  let m = st.cp.m in
  (match st.brep with
   | Bsparse lu ->
       for i = 0 to m - 1 do
         st.cb.(i) <- cost.(st.basis.(i))
       done;
       Linalg.Lu.btran_dense lu st.cb st.pi
   | Bdense binv ->
       Array.fill st.pi 0 m 0.0;
       for i = 0 to m - 1 do
         let cb = cost.(st.basis.(i)) in
         if cb <> 0.0 then begin
           let row = binv.(i) in
           for k = 0 to m - 1 do
             st.pi.(k) <- st.pi.(k) +. (cb *. row.(k))
           done
         end
       done);
  Obs.Metrics.add m_btrans 1;
  if !time_kernels then
    btran_seconds := !btran_seconds +. (Obs.Clock.now () -. t0)

(* Row [r] of B^-1, for the dual-simplex pricing row.  The returned
   array is a view (dense) or the [rho] scratch (sparse): valid until
   the next kernel call on [st]. *)
let basis_row st r =
  match st.brep with
  | Bdense binv -> binv.(r)
  | Bsparse lu ->
      let t0 = if !time_kernels then Obs.Clock.now () else 0.0 in
      Linalg.Lu.btran_unit lu r st.rho;
      Obs.Metrics.add m_btrans 1;
      if !time_kernels then
        btran_seconds := !btran_seconds +. (Obs.Clock.now () -. t0);
      st.rho

(* Fold a pivot on basic row [r] into the representation; [st.y] must
   hold the FTRAN of the entering column (the ratio-test vector). *)
let basis_replace st r =
  (match st.brep with
   | Bsparse lu ->
       let quality = Linalg.Lu.push_eta lu ~r ~y:st.y in
       st.eta_updates <- st.eta_updates + 1;
       Obs.Metrics.add m_eta_updates 1;
       if quality < basis_config.stab_tol then Linalg.Lu.flag_unstable lu
   | Bdense binv ->
       let m = st.cp.m in
       let yr = st.y.(r) in
       let inv_r = binv.(r) in
       let pr = 1.0 /. yr in
       for k = 0 to m - 1 do
         inv_r.(k) <- inv_r.(k) *. pr
       done;
       for i = 0 to m - 1 do
         if i <> r then begin
           let f = st.y.(i) in
           if f <> 0.0 then begin
             let row = binv.(i) in
             for k = 0 to m - 1 do
               row.(k) <- row.(k) -. (f *. inv_r.(k))
             done
           end
         end
       done);
  st.pivots <- st.pivots + 1

let eta_cap m =
  if basis_config.eta_max > 0 then basis_config.eta_max
  else min 64 (max 4 (m / 2))

(* Is the representation due for a refactorisation?  The dense inverse
   keeps its historical fixed pivot cadence; the LU triggers on the
   stability flag, eta-file length, or eta fill outgrowing the factors
   themselves. *)
let basis_stale st =
  match st.brep with
  | Bdense _ -> st.pivots > 0 && st.pivots mod refactor_period = 0
  | Bsparse lu ->
      Linalg.Lu.unstable lu
      || Linalg.Lu.eta_count lu >= eta_cap st.cp.m
      || float_of_int (Linalg.Lu.eta_nnz lu)
         >= basis_config.eta_growth
            *. float_of_int (Linalg.Lu.lu_nnz lu + st.cp.m)

let reduced_cost st cost j =
  let idx, vals = st.all_cols.(j) in
  let acc = ref cost.(j) in
  for k = 0 to Array.length idx - 1 do
    acc := !acc -. (st.pi.(idx.(k)) *. vals.(k))
  done;
  !acc

(* Dense Gauss-Jordan inversion of the current basis with partial
   pivoting: the reference representation, and the counted fallback
   when the sparse LU rejects a basis.  Returns [None] on a singular
   basis. *)
let dense_invert st =
  let m = st.cp.m in
  (* assemble B and identity side by side; eliminate in place *)
  let bmat = Array.make_matrix m m 0.0 in
  for col = 0 to m - 1 do
    let idx, vals = st.all_cols.(st.basis.(col)) in
    for k = 0 to Array.length idx - 1 do
      bmat.(idx.(k)).(col) <- vals.(k)
    done
  done;
  let inv = Array.init m (fun i ->
      Array.init m (fun j -> if i = j then 1.0 else 0.0)) in
  let singular = ref false in
  (for col = 0 to m - 1 do
     if not !singular then begin
       (* partial pivot *)
       let piv = ref col in
       for i = col + 1 to m - 1 do
         if Float.abs bmat.(i).(col) > Float.abs bmat.(!piv).(col) then
           piv := i
       done;
       if Float.abs bmat.(!piv).(col) < 1e-12 then singular := true
       else begin
         if !piv <> col then begin
           let t = bmat.(col) in bmat.(col) <- bmat.(!piv); bmat.(!piv) <- t;
           let t = inv.(col) in inv.(col) <- inv.(!piv); inv.(!piv) <- t
         end;
         let d = 1.0 /. bmat.(col).(col) in
         for k = 0 to m - 1 do
           bmat.(col).(k) <- bmat.(col).(k) *. d;
           inv.(col).(k) <- inv.(col).(k) *. d
         done;
         for i = 0 to m - 1 do
           if i <> col then begin
             let f = bmat.(i).(col) in
             if f <> 0.0 then begin
               for k = 0 to m - 1 do
                 bmat.(i).(k) <- bmat.(i).(k) -. (f *. bmat.(col).(k));
                 inv.(i).(k) <- inv.(i).(k) -. (f *. inv.(col).(k))
               done
             end
           end
         done
       end
     end
   done);
  if !singular then None else Some inv

(* xb = B^-1 (b - N x_N), against the freshly rebuilt representation. *)
let recompute_xb st =
  let m = st.cp.m in
  let r = Array.copy st.cp.b in
  for j = 0 to st.nt - 1 do
    if st.stat.(j) <> Basic && st.value.(j) <> 0.0 then begin
      let idx, vals = st.all_cols.(j) in
      for k = 0 to Array.length idx - 1 do
        r.(idx.(k)) <- r.(idx.(k)) -. (vals.(k) *. st.value.(j))
      done
    end
  done;
  match st.brep with
  | Bsparse lu -> Linalg.Lu.ftran_dense lu r st.xb
  | Bdense binv ->
      for i = 0 to m - 1 do
        let acc = ref 0.0 in
        let row = binv.(i) in
        for k = 0 to m - 1 do
          acc := !acc +. (row.(k) *. r.(k))
        done;
        st.xb.(i) <- !acc
      done

(* Rebuild the basis representation from scratch and recompute basic
   values.  Returns false if the basis is singular.  Under [Sparse_lu]
   a failed LU factorisation falls back to the dense inverse — counted,
   never silent ([dense_fallbacks], "simplex.dense_fallbacks"). *)
let refactor ?(initial = false) st =
  let m = st.cp.m in
  if m = 0 then true
  else begin
    if not initial then begin
      st.refactors <- st.refactors + 1;
      Obs.Metrics.add m_refactors 1;
      if Obs.Trace.enabled () then Obs.Trace.count "refactor" 1
    end;
    let rep =
      match st.kind with
      | Sparse_lu -> (
          match
            Linalg.Lu.factor ~m
              (Array.init m (fun i -> st.all_cols.(st.basis.(i))))
          with
          | Some lu ->
              Obs.Metrics.add m_lu_factors 1;
              Some (Bsparse lu)
          | None -> (
              match dense_invert st with
              | Some inv ->
                  st.dense_fallbacks <- st.dense_fallbacks + 1;
                  Obs.Metrics.add m_dense_fallbacks 1;
                  Some (Bdense inv)
              | None -> None))
      | Dense_inverse -> (
          match dense_invert st with
          | Some inv -> Some (Bdense inv)
          | None -> None)
    in
    match rep with
    | None -> false
    | Some rep ->
        st.brep <- rep;
        recompute_xb st;
        true
  end

(* One phase of bounded-variable simplex, minimising [cost].  Returns
   [`Optimal], [`Unbounded] or [`Iteration_limit]. *)
let run_phase st cost max_iter =
  let m = st.cp.m in
  let iter = ref 0 in
  let result = ref None in
  let bland_threshold = max 2000 (20 * (m + st.nt)) in
  while !result = None do
    if !iter >= max_iter then result := Some `Iteration_limit
    else begin
      incr iter;
      if basis_stale st then ignore (refactor st);
      compute_pi st cost;
      (* --- pricing --- *)
      let use_bland = !iter > bland_threshold in
      let best = ref (-1) and best_score = ref 0.0 and best_sigma = ref 1.0 in
      (try
         for j = 0 to st.nt - 1 do
           (match st.stat.(j) with
            | Basic -> ()
            | At_lower | At_upper | Free_zero ->
                if st.lo.(j) < st.hi.(j) then begin
                  let d = reduced_cost st cost j in
                  let score, sigma =
                    match st.stat.(j) with
                    | At_lower -> if d < -.opt_tol then (-.d, 1.0) else (0.0, 0.0)
                    | At_upper -> if d > opt_tol then (d, -1.0) else (0.0, 0.0)
                    | Free_zero ->
                        if d < -.opt_tol then (-.d, 1.0)
                        else if d > opt_tol then (d, -1.0)
                        else (0.0, 0.0)
                    | Basic -> (0.0, 0.0)
                  in
                  if score > !best_score then begin
                    best := j; best_score := score; best_sigma := sigma;
                    if use_bland then raise Exit
                  end
                end)
         done
       with Exit -> ());
      if !best < 0 then result := Some `Optimal
      else begin
        let j = !best and sigma = !best_sigma in
        ftran st st.all_cols.(j);
        (* --- ratio test --- *)
        let own_range = st.hi.(j) -. st.lo.(j) in
        let t_best = ref own_range and leave = ref (-1) in
        for i = 0 to m - 1 do
          let d = -.sigma *. st.y.(i) in
          let bi = st.basis.(i) in
          if d < -.pivot_tol && st.lo.(bi) > neg_infinity then begin
            let t = Float.max 0.0 ((st.xb.(i) -. st.lo.(bi)) /. -.d) in
            if t < !t_best -. 1e-12
               || (t <= !t_best +. 1e-12 && !leave >= 0
                   && Float.abs st.y.(i) > Float.abs st.y.(!leave))
            then begin t_best := t; leave := i end
          end
          else if d > pivot_tol && st.hi.(bi) < infinity then begin
            let t = Float.max 0.0 ((st.hi.(bi) -. st.xb.(i)) /. d) in
            if t < !t_best -. 1e-12
               || (t <= !t_best +. 1e-12 && !leave >= 0
                   && Float.abs st.y.(i) > Float.abs st.y.(!leave))
            then begin t_best := t; leave := i end
          end
        done;
        if Float.is_nan !t_best || !t_best = infinity then
          result := Some `Unbounded
        else begin
          let t = !t_best in
          (* move basics *)
          for i = 0 to m - 1 do
            st.xb.(i) <- st.xb.(i) +. (-.sigma *. st.y.(i) *. t)
          done;
          let start =
            match st.stat.(j) with
            | At_lower -> st.lo.(j)
            | At_upper -> st.hi.(j)
            | Free_zero -> 0.0
            | Basic -> assert false
          in
          let new_val = start +. (sigma *. t) in
          if !leave < 0 then begin
            (* bound flip: entering variable hits its own other bound *)
            st.value.(j) <- new_val;
            st.stat.(j) <- (if sigma > 0.0 then At_upper else At_lower)
          end
          else begin
            let r = !leave in
            let leaving = st.basis.(r) in
            let d_r = -.sigma *. st.y.(r) in
            st.stat.(leaving) <- (if d_r < 0.0 then At_lower else At_upper);
            st.value.(leaving) <-
              (if d_r < 0.0 then st.lo.(leaving) else st.hi.(leaving));
            st.pos.(leaving) <- -1;
            st.basis.(r) <- j;
            st.pos.(j) <- r;
            st.stat.(j) <- Basic;
            st.value.(j) <- 0.0;
            st.xb.(r) <- new_val;
            basis_replace st r
          end
        end
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

(* Dual simplex phase: starting from a basis whose reduced costs are
   dual feasible for [cost] but whose basic values may violate their
   bounds (after a bound change), pivot until primal feasibility is
   recovered.  Returns [`Feasible], [`Infeasible] (dual unbounded, so
   the primal has no feasible point) or [`Iteration_limit]. *)
let run_dual st cost max_iter =
  let m = st.cp.m in
  if m = 0 then `Feasible
  else begin
    let iter = ref 0 in
    let result = ref None in
    while !result = None do
      if !iter >= max_iter then result := Some `Iteration_limit
      else begin
        incr iter;
        if basis_stale st then ignore (refactor st);
        (* --- leaving variable: most violated basic --- *)
        let r = ref (-1) and worst = ref feas_tol in
        for i = 0 to m - 1 do
          let bi = st.basis.(i) in
          let v =
            Float.max (st.lo.(bi) -. st.xb.(i)) (st.xb.(i) -. st.hi.(bi))
          in
          if v > !worst then begin worst := v; r := i end
        done;
        if !r < 0 then result := Some `Feasible
        else begin
          let r = !r in
          let bi = st.basis.(r) in
          let below = st.xb.(r) < st.lo.(bi) in
          let target = if below then st.lo.(bi) else st.hi.(bi) in
          compute_pi st cost;
          let br = basis_row st r in
          (* --- entering variable: dual ratio test over row r --- *)
          let best = ref (-1) and best_ratio = ref infinity
          and best_alpha = ref 0.0 in
          for j = 0 to st.nt - 1 do
            if st.stat.(j) <> Basic && st.lo.(j) < st.hi.(j) then begin
              let idx, vals = st.all_cols.(j) in
              let a = ref 0.0 in
              for k = 0 to Array.length idx - 1 do
                a := !a +. (br.(idx.(k)) *. vals.(k))
              done;
              let a = !a in
              let eligible =
                (* sign of the entering move that drives xb(r) toward its
                   violated bound, respecting the entering bound status *)
                match st.stat.(j) with
                | At_lower -> if below then a < -.pivot_tol else a > pivot_tol
                | At_upper -> if below then a > pivot_tol else a < -.pivot_tol
                | Free_zero -> Float.abs a > pivot_tol
                | Basic -> false
              in
              if eligible then begin
                let d = reduced_cost st cost j in
                let ratio = Float.abs d /. Float.abs a in
                if ratio < !best_ratio -. 1e-12
                   || (ratio <= !best_ratio +. 1e-12
                       && Float.abs a > Float.abs !best_alpha)
                then begin best := j; best_ratio := ratio; best_alpha := a end
              end
            end
          done;
          if !best < 0 then result := Some `Infeasible
          else begin
            let q = !best in
            ftran st st.all_cols.(q);
            let aq = st.y.(r) in
            if Float.abs aq < pivot_tol then
              (* the recomputed pivot element collapsed numerically;
                 bail out, the caller falls back to a cold solve *)
              result := Some `Iteration_limit
            else begin
              let t = (st.xb.(r) -. target) /. aq in
              let v_q =
                match st.stat.(q) with
                | At_lower -> st.lo.(q)
                | At_upper -> st.hi.(q)
                | Free_zero -> 0.0
                | Basic -> assert false
              in
              for i = 0 to m - 1 do
                st.xb.(i) <- st.xb.(i) -. (st.y.(i) *. t)
              done;
              st.stat.(bi) <- (if below then At_lower else At_upper);
              st.value.(bi) <- target;
              st.pos.(bi) <- -1;
              st.basis.(r) <- q;
              st.pos.(q) <- r;
              st.stat.(q) <- Basic;
              st.value.(q) <- 0.0;
              st.xb.(r) <- v_q +. t;
              basis_replace st r
            end
          end
        end
      end
    done;
    match !result with Some r -> r | None -> assert false
  end

let objective_value st cost =
  let acc = ref 0.0 in
  for j = 0 to st.nt - 1 do
    if st.stat.(j) <> Basic && st.value.(j) <> 0.0 then
      acc := !acc +. (cost.(j) *. st.value.(j))
  done;
  for i = 0 to st.cp.m - 1 do
    acc := !acc +. (cost.(st.basis.(i)) *. st.xb.(i))
  done;
  !acc

let extract_x st =
  Array.init st.cp.n (fun j ->
      if st.stat.(j) = Basic then st.xb.(st.pos.(j)) else st.value.(j))

(* Build a fresh solver state for [cp] under structural bounds [lo]/[hi]:
   slacks basic, structural variables at their gentlest bound,
   artificial columns patching any row whose slack starts out of range.
   Returns [None] if the initial basis cannot be factorised. *)
let build_state cp ~lo ~hi =
  let m = cp.m and n = cp.n in
  let nt0 = n + m in
  let lo_all = Array.make nt0 0.0 and hi_all = Array.make nt0 0.0 in
  Array.blit lo 0 lo_all 0 n;
  Array.blit hi 0 hi_all 0 n;
  Array.blit cp.slack_lo 0 lo_all n m;
  Array.blit cp.slack_hi 0 hi_all n m;
  let stat = Array.make nt0 At_lower in
  let value = Array.make nt0 0.0 in
  for j = 0 to n - 1 do
    if lo_all.(j) > neg_infinity then begin
      (* prefer the bound closer to zero for a gentler start *)
      if hi_all.(j) < infinity
         && Float.abs hi_all.(j) < Float.abs lo_all.(j)
      then begin stat.(j) <- At_upper; value.(j) <- hi_all.(j) end
      else begin stat.(j) <- At_lower; value.(j) <- lo_all.(j) end
    end
    else if hi_all.(j) < infinity then begin
      stat.(j) <- At_upper; value.(j) <- hi_all.(j)
    end
    else begin stat.(j) <- Free_zero; value.(j) <- 0.0 end
  done;
  (* slack basic values with identity basis *)
  let slack_val = Array.copy cp.b in
  for j = 0 to n - 1 do
    if value.(j) <> 0.0 then begin
      let idx, vals = cp.cols.(j) in
      for k = 0 to Array.length idx - 1 do
        slack_val.(idx.(k)) <- slack_val.(idx.(k)) -. (vals.(k) *. value.(j))
      done
    end
  done;
  (* rows whose slack violates its bounds need an artificial *)
  let artificials = ref [] in
  for i = 0 to m - 1 do
    let s = slack_val.(i) in
    if s < cp.slack_lo.(i) -. feas_tol || s > cp.slack_hi.(i) +. feas_tol
    then artificials := i :: !artificials
  done;
  let art_rows = Array.of_list (List.rev !artificials) in
  let n_art = Array.length art_rows in
  let nt = nt0 + n_art in
  let all_cols =
    Array.init nt (fun j ->
        if j < nt0 then cp.cols.(j)
        else begin
          let i = art_rows.(j - nt0) in
          let s = slack_val.(i) in
          let clamped =
            Float.max cp.slack_lo.(i) (Float.min cp.slack_hi.(i) s)
          in
          let sign = if s -. clamped >= 0.0 then 1.0 else -1.0 in
          ([| i |], [| sign |])
        end)
  in
  let lo_full = Array.make nt 0.0 and hi_full = Array.make nt infinity in
  Array.blit lo_all 0 lo_full 0 nt0;
  Array.blit hi_all 0 hi_full 0 nt0;
  let stat_full = Array.make nt At_lower in
  Array.blit stat 0 stat_full 0 nt0;
  let value_full = Array.make nt 0.0 in
  Array.blit value 0 value_full 0 nt0;
  (* basis: slack per row, replaced by the artificial where infeasible;
     the displaced slack goes nonbasic at its nearest bound *)
  let basis = Array.init m (fun i -> n + i) in
  Array.iteri
    (fun k i ->
      basis.(i) <- nt0 + k;
      let s = slack_val.(i) in
      let clamped = Float.max cp.slack_lo.(i) (Float.min cp.slack_hi.(i) s) in
      stat_full.(n + i) <-
        (if clamped = cp.slack_lo.(i) then At_lower else At_upper);
      value_full.(n + i) <- clamped)
    art_rows;
  let pos = Array.make nt (-1) in
  Array.iteri (fun i j -> pos.(j) <- i; stat_full.(j) <- Basic) basis;
  let st =
    { cp; kind = !basis_kind; nt; all_cols; lo = lo_full; hi = hi_full;
      stat = stat_full; value = value_full; basis; pos;
      brep = Bdense [||];  (* placeholder; refactor installs the real one *)
      xb = Array.make m 0.0; y = Array.make m 0.0; pi = Array.make m 0.0;
      cb = Array.make m 0.0; rho = Array.make m 0.0;
      pivots = 0; refactors = 0; eta_updates = 0; dense_fallbacks = 0 }
  in
  if refactor ~initial:true st then Some (st, n_art) else None

(* Two-phase cold solve on a freshly built state. *)
let solve_on_state st ~n_art ~prm ~max_iter =
  let cp = st.cp in
  let n = cp.n and nt = st.nt in
  let nt0 = n + cp.m in
  let cost_full = Array.make nt 0.0 in
  let finish_infeasible () =
    { status = Infeasible; obj = nan; x = extract_x st; pivots = st.pivots;
      duals = [||] }
  in
  let phase2 () =
    Array.fill cost_full 0 nt 0.0;
    Array.blit prm.pc 0 cost_full 0 n;
    Obs.Metrics.add m_phase2 1;
    match
      Obs.Trace.with_span "simplex.phase2" (fun () ->
          run_phase st cost_full max_iter)
    with
    | `Optimal ->
        ignore (refactor st);
        let raw = objective_value st cost_full +.
                  (if prm.pnegate then -.prm.pconst else prm.pconst) in
        let obj = if prm.pnegate then -.raw else raw in
        compute_pi st cost_full;
        { status = Optimal; obj; x = extract_x st; pivots = st.pivots;
          duals = Array.copy st.pi }
    | `Unbounded ->
        { status = Unbounded; obj = nan; x = extract_x st; pivots = st.pivots;
          duals = [||] }
    | `Iteration_limit ->
        { status = Iteration_limit; obj = nan; x = extract_x st;
          pivots = st.pivots; duals = [||] }
  in
  if n_art = 0 then phase2 ()
  else begin
    for k = 0 to n_art - 1 do
      cost_full.(nt0 + k) <- 1.0
    done;
    Obs.Metrics.add m_phase1 1;
    match
      Obs.Trace.with_span "simplex.phase1" (fun () ->
          run_phase st cost_full max_iter)
    with
    | `Unbounded ->
        (* phase-1 objective is bounded below by 0: numerically impossible,
           report infeasible conservatively *)
        finish_infeasible ()
    | `Iteration_limit ->
        { status = Iteration_limit; obj = nan; x = extract_x st;
          pivots = st.pivots; duals = [||] }
    | `Optimal ->
        let infeas = objective_value st cost_full in
        if infeas > 1e-6 then finish_infeasible ()
        else begin
          (* pin artificials to zero for phase 2 *)
          for k = 0 to n_art - 1 do
            let j = nt0 + k in
            st.lo.(j) <- 0.0;
            st.hi.(j) <- 0.0;
            if st.stat.(j) <> Basic then st.value.(j) <- 0.0
          done;
          phase2 ()
        end
  end

let default_max_iter cp = 20000 + (60 * (cp.m + cp.n))

let solve_compiled_inner ?max_iter ?objective cp ~lo ~hi =
  let prm = params_of_objective cp objective in
  let m = cp.m and n = cp.n in
  if Array.length lo <> n || Array.length hi <> n then
    invalid_arg "Simplex.solve_compiled: bounds length mismatch";
  let max_iter =
    match max_iter with Some k -> k | None -> 20000 + (60 * (m + n))
  in
  let fail_bounds = ref false in
  Array.iteri (fun j l -> if l > hi.(j) then fail_bounds := true) lo;
  if !fail_bounds then
    { status = Infeasible; obj = nan; x = Array.make n nan; pivots = 0;
      duals = [||] }
  else
    match build_state cp ~lo ~hi with
    | None ->
        { status = Infeasible; obj = nan; x = Array.make n nan; pivots = 0;
          duals = [||] }
    | Some (st, n_art) -> solve_on_state st ~n_art ~prm ~max_iter

let solve_compiled ?max_iter ?objective cp ~lo ~hi =
  Obs.Trace.with_span "simplex.solve" (fun () ->
      let res = solve_compiled_inner ?max_iter ?objective cp ~lo ~hi in
      Obs.Metrics.add m_solves 1;
      Obs.Metrics.add m_cold 1;
      Obs.Metrics.add m_pivots res.pivots;
      Obs.Trace.count "pivots" res.pivots;
      Obs.Trace.count "cold" 1;
      res)

let solve ?max_iter model =
  let cp = compile model in
  let lo, hi = default_bounds cp in
  solve_compiled ?max_iter cp ~lo ~hi

(* --- persistent sessions: basis reuse across solves --- *)

type session_stats = {
  mutable solves : int;
  mutable cold_solves : int;
  mutable warm_solves : int;
  mutable dual_restarts : int;
  mutable fallbacks : int;
  mutable total_pivots : int;
  mutable audit_mismatches : int;
  mutable refactors : int;
  mutable eta_updates : int;
  mutable dense_fallbacks : int;
}

type session = {
  scp : compiled;
  s_lo : float array;               (* current structural bounds *)
  s_hi : float array;
  mutable sstate : state option;    (* factorised basis, or None *)
  mutable last_c : float array option;
      (* structural phase-2 cost of the last solve that ended [Optimal]
         (or proved infeasibility by dual pivots); the basis' reduced
         costs are dual feasible for it *)
  mutable dual_ok : bool;
  mutable inverted : int;           (* #vars with lo > hi *)
  mutable solves_since_refactor : int;
  stats : session_stats;
}

let create_session ?lo ?hi cp =
  let dlo, dhi = default_bounds cp in
  let s_lo = match lo with Some a -> Array.copy a | None -> dlo in
  let s_hi = match hi with Some a -> Array.copy a | None -> dhi in
  if Array.length s_lo <> cp.n || Array.length s_hi <> cp.n then
    invalid_arg "Simplex.create_session: bounds length mismatch";
  let inverted = ref 0 in
  Array.iteri (fun j l -> if l > s_hi.(j) then incr inverted) s_lo;
  { scp = cp; s_lo; s_hi; sstate = None; last_c = None; dual_ok = false;
    inverted = !inverted; solves_since_refactor = 0;
    stats = { solves = 0; cold_solves = 0; warm_solves = 0;
              dual_restarts = 0; fallbacks = 0; total_pivots = 0;
              audit_mismatches = 0; refactors = 0; eta_updates = 0;
              dense_fallbacks = 0 } }

let session_stats sn = sn.stats

let session_bounds sn = (Array.copy sn.s_lo, Array.copy sn.s_hi)

let set_var_bounds sn j ~lo ~hi =
  if j < 0 || j >= sn.scp.n then
    invalid_arg "Simplex.set_var_bounds: variable out of range";
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Simplex.set_var_bounds: NaN bound";
  if sn.s_lo.(j) <> lo || sn.s_hi.(j) <> hi then begin
    let was_inverted = sn.s_lo.(j) > sn.s_hi.(j) in
    sn.s_lo.(j) <- lo;
    sn.s_hi.(j) <- hi;
    let now_inverted = lo > hi in
    if was_inverted <> now_inverted then
      sn.inverted <- sn.inverted + (if now_inverted then 1 else -1);
    match sn.sstate with
    | None -> ()
    | Some st ->
        st.lo.(j) <- lo;
        st.hi.(j) <- hi;
        (match st.stat.(j) with
         | Basic -> ()  (* xb may now violate; the dual phase repairs it *)
         | At_lower | At_upper | Free_zero ->
             (* nonbasic variables ride along with their bound *)
             let old_v = st.value.(j) in
             let stat', v' =
               if lo > neg_infinity && hi < infinity then
                 (match st.stat.(j) with
                  | At_upper -> (At_upper, hi)
                  | At_lower -> (At_lower, lo)
                  | _ ->
                      if Float.abs hi < Float.abs lo then (At_upper, hi)
                      else (At_lower, lo))
               else if lo > neg_infinity then (At_lower, lo)
               else if hi < infinity then (At_upper, hi)
               else (Free_zero, 0.0)
             in
             st.stat.(j) <- stat';
             st.value.(j) <- v';
             let dv = v' -. old_v in
             if dv <> 0.0 then begin
               (* xb -= B^-1 A_j dv : basics absorb the bound shift *)
               ftran st st.all_cols.(j);
               for i = 0 to st.cp.m - 1 do
                 st.xb.(i) <- st.xb.(i) -. (st.y.(i) *. dv)
               done
             end)
  end

let set_bounds sn ~lo ~hi =
  if Array.length lo <> sn.scp.n || Array.length hi <> sn.scp.n then
    invalid_arg "Simplex.set_bounds: bounds length mismatch";
  for j = 0 to sn.scp.n - 1 do
    if sn.s_lo.(j) <> lo.(j) || sn.s_hi.(j) <> hi.(j) then
      set_var_bounds sn j ~lo:lo.(j) ~hi:hi.(j)
  done

let array_eq a b =
  Array.length a = Array.length b
  &&
  (let ok = ref true in
   Array.iteri (fun i v -> if v <> b.(i) then ok := false) a;
   !ok)

let solve_session_inner ?max_iter ?objective sn =
  let cp = sn.scp in
  let prm = params_of_objective cp objective in
  let n = cp.n and m = cp.m in
  let max_iter =
    match max_iter with Some k -> k | None -> default_max_iter cp
  in
  sn.stats.solves <- sn.stats.solves + 1;
  if sn.inverted > 0 then
    { status = Infeasible; obj = nan; x = Array.make n nan; pivots = 0;
      duals = [||] }
  else begin
    (* In audit mode, every result served from a retained basis is
       cross-checked against a cold solve of the same query; on
       disagreement the retained basis is dropped and the cold result
       returned, so a warm-start bug cannot corrupt a certification. *)
    let audit_cross_check res =
      if not !audit_mode then res
      else begin
        let cold_sol =
          solve_compiled ~max_iter ?objective cp ~lo:sn.s_lo ~hi:sn.s_hi
        in
        let agree =
          match (res.status, cold_sol.status) with
          | Optimal, Optimal ->
              Float.abs (res.obj -. cold_sol.obj)
              <= 5e-5 *. Float.max 1.0 (Float.abs cold_sol.obj)
          | a, b -> a = b
        in
        if agree then res
        else begin
          sn.stats.audit_mismatches <- sn.stats.audit_mismatches + 1;
          sn.sstate <- None;
          sn.dual_ok <- false;
          sn.last_c <- None;
          Printf.eprintf
            "[audit] Simplex warm solve disagrees with cold re-solve \
             (warm: obj %g, cold: obj %g); dropping the retained basis\n%!"
            res.obj cold_sol.obj;
          cold_sol
        end
      end
    in
    let cold () =
      sn.stats.cold_solves <- sn.stats.cold_solves + 1;
      sn.sstate <- None;
      sn.dual_ok <- false;
      sn.last_c <- None;
      sn.solves_since_refactor <- 0;
      match build_state cp ~lo:sn.s_lo ~hi:sn.s_hi with
      | None ->
          { status = Infeasible; obj = nan; x = Array.make n nan; pivots = 0;
            duals = [||] }
      | Some (st, n_art) ->
          let res = solve_on_state st ~n_art ~prm ~max_iter in
          sn.stats.total_pivots <- sn.stats.total_pivots + st.pivots;
          sn.stats.refactors <- sn.stats.refactors + st.refactors;
          sn.stats.eta_updates <- sn.stats.eta_updates + st.eta_updates;
          sn.stats.dense_fallbacks <-
            sn.stats.dense_fallbacks + st.dense_fallbacks;
          (match res.status with
           | Optimal ->
               sn.sstate <- Some st;
               sn.dual_ok <- true;
               sn.last_c <- Some (Array.copy prm.pc)
           | Unbounded ->
               (* the basis is still primal feasible; a later objective
                  may be bounded *)
               sn.sstate <- Some st
           | Infeasible | Iteration_limit -> ());
          res
    in
    match sn.sstate with
    | None -> cold ()
    | Some st ->
        let cost_full = Array.make st.nt 0.0 in
        Array.blit prm.pc 0 cost_full 0 n;
        let pivots0 = st.pivots in
        let refactors0 = st.refactors and etas0 = st.eta_updates in
        let dense_fb0 = st.dense_fallbacks in
        let charge () =
          sn.stats.total_pivots <-
            sn.stats.total_pivots + (st.pivots - pivots0);
          sn.stats.refactors <- sn.stats.refactors + (st.refactors - refactors0);
          sn.stats.eta_updates <-
            sn.stats.eta_updates + (st.eta_updates - etas0);
          sn.stats.dense_fallbacks <-
            sn.stats.dense_fallbacks + (st.dense_fallbacks - dense_fb0)
        in
        let primal_finish () =
          match run_phase st cost_full max_iter with
          | `Optimal ->
              sn.dual_ok <- true;
              sn.last_c <- Some (Array.copy prm.pc);
              sn.solves_since_refactor <- sn.solves_since_refactor + 1;
              (* Dense path: fixed per-solve cadence.  Sparse path: the
                 adaptive staleness triggers, plus a generous safety cap
                 bounding drift of the incrementally maintained xb. *)
              let due =
                match st.brep with
                | Bdense _ ->
                    sn.solves_since_refactor >= session_refactor_solves
                | Bsparse _ ->
                    basis_stale st
                    || sn.solves_since_refactor
                       >= basis_config.session_solves_cap
              in
              if due then begin
                ignore (refactor st);
                sn.solves_since_refactor <- 0
              end;
              let raw = objective_value st cost_full +.
                        (if prm.pnegate then -.prm.pconst else prm.pconst) in
              let obj = if prm.pnegate then -.raw else raw in
              compute_pi st cost_full;
              charge ();
              { status = Optimal; obj; x = extract_x st;
                pivots = st.pivots - pivots0; duals = Array.copy st.pi }
          | `Unbounded ->
              sn.dual_ok <- false;
              sn.last_c <- None;
              charge ();
              { status = Unbounded; obj = nan; x = extract_x st;
                pivots = st.pivots - pivots0; duals = [||] }
          | `Iteration_limit ->
              charge ();
              sn.sstate <- None;
              sn.dual_ok <- false;
              sn.last_c <- None;
              { status = Iteration_limit; obj = nan; x = extract_x st;
                pivots = st.pivots - pivots0; duals = [||] }
        in
        (* primal feasibility of the retained basis under current bounds *)
        let feas = ref true in
        for i = 0 to m - 1 do
          let bi = st.basis.(i) in
          if st.xb.(i) < st.lo.(bi) -. feas_tol
             || st.xb.(i) > st.hi.(bi) +. feas_tol
          then feas := false
        done;
        if !feas then begin
          (* objective-only hot start: re-price, primal phase 2 *)
          sn.stats.warm_solves <- sn.stats.warm_solves + 1;
          audit_cross_check (primal_finish ())
        end
        else if sn.dual_ok then begin
          (* bound-change restart: dual phase under the last optimal
             cost (for which the basis is dual feasible), then primal
             phase 2 under the requested cost *)
          sn.stats.warm_solves <- sn.stats.warm_solves + 1;
          sn.stats.dual_restarts <- sn.stats.dual_restarts + 1;
          let dual_cost =
            match sn.last_c with
            | Some c0 when not (array_eq c0 prm.pc) ->
                let c = Array.make st.nt 0.0 in
                Array.blit c0 0 c 0 n;
                c
            | _ -> cost_full
          in
          match run_dual st dual_cost max_iter with
          | `Feasible -> audit_cross_check (primal_finish ())
          | `Infeasible ->
              (* dual unbounded: no feasible point under these bounds;
                 the basis stays dual feasible for [last_c] *)
              charge ();
              audit_cross_check
                { status = Infeasible; obj = nan; x = Array.make n nan;
                  pivots = st.pivots - pivots0; duals = [||] }
          | `Iteration_limit ->
              charge ();
              sn.stats.warm_solves <- sn.stats.warm_solves - 1;
              sn.stats.fallbacks <- sn.stats.fallbacks + 1;
              cold ()
        end
        else begin
          sn.stats.fallbacks <- sn.stats.fallbacks + 1;
          cold ()
        end
  end

let solve_session ?max_iter ?objective sn =
  Obs.Trace.with_span "simplex.solve" (fun () ->
      let st0 = sn.stats in
      let warm0 = st0.warm_solves
      and cold0 = st0.cold_solves
      and dual0 = st0.dual_restarts
      and fall0 = st0.fallbacks in
      let res = solve_session_inner ?max_iter ?objective sn in
      Obs.Metrics.add m_solves 1;
      Obs.Metrics.add m_pivots res.pivots;
      Obs.Metrics.add m_warm (st0.warm_solves - warm0);
      Obs.Metrics.add m_cold (st0.cold_solves - cold0);
      Obs.Metrics.add m_dual_restarts (st0.dual_restarts - dual0);
      Obs.Metrics.add m_fallbacks (st0.fallbacks - fall0);
      if Obs.Trace.enabled () then begin
        Obs.Trace.count "pivots" res.pivots;
        Obs.Trace.count "warm" (st0.warm_solves - warm0);
        Obs.Trace.count "cold" (st0.cold_solves - cold0);
        if st0.dual_restarts > dual0 then
          Obs.Trace.count "dual_restarts" (st0.dual_restarts - dual0)
      end;
      res)
