(** Linear-program model builder.

    A model is a mutable collection of bounded variables, linear
    constraints and one linear objective.  Build it imperatively, then
    hand it to {!Simplex.solve} (pure LP) or {!module:Milp} (with
    integrality marks).

    Variables are identified by dense integer indices in creation
    order.  Bounds may be infinite ([neg_infinity] / [infinity]). *)

type var = int

type sense = Le | Ge | Eq

type dir = Minimize | Maximize

type constr = {
  row : (var * float) list;  (** sparse coefficients *)
  sense : sense;
  rhs : float;
}

type t

val create : unit -> t

val add_var : ?name:string -> ?integer:bool -> lo:float -> hi:float -> t -> var
(** Adds a variable with bounds [\[lo, hi\]].  [integer] marks it for
    branch & bound (ignored by the pure LP solver).  Raises
    [Invalid_argument] if [lo > hi] or either bound is NaN. *)

val add_vars : ?prefix:string -> n:int -> lo:float -> hi:float -> t -> var array
(** [n] fresh variables sharing the same bounds. *)

val add_constr : t -> (var * float) list -> sense -> float -> unit
(** [add_constr t row sense rhs] adds [row {<=,>=,=} rhs].  Raises
    [Invalid_argument] on unknown variable indices. *)

val set_objective : t -> dir -> ?const:float -> (var * float) list -> unit

val set_bounds : t -> var -> lo:float -> hi:float -> unit
(** Overwrite a variable's bounds. *)

val n_vars : t -> int

val n_constrs : t -> int

val var_lo : t -> var -> float

val var_hi : t -> var -> float

val var_name : t -> var -> string

val is_integer : t -> var -> bool

val integer_vars : t -> var list
(** Indices marked integer, ascending. *)

val constrs : t -> constr array
(** Snapshot of the constraints (do not mutate the rows). *)

val same_structure : ?except:var list -> t -> t -> bool
(** Bit-exact structural equality: same variable count, integrality
    marks and bounds (variables in [except] have their bounds ignored),
    and identical constraints — sense, right-hand side and sparse rows
    compared by float bit pattern, in order.  Names and objectives are
    ignored.  Used by audit mode to cross-check that a deduplicated
    certification cone really encodes to the model it replays. *)

val objective : t -> dir * float * (var * float) list
(** Direction, constant term, sparse coefficients. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, for debugging and tests. *)
