type var = int

type sense = Le | Ge | Eq

type dir = Minimize | Maximize

type constr = { row : (var * float) list; sense : sense; rhs : float }

type var_info = {
  name : string;
  mutable lo : float;
  mutable hi : float;
  integer : bool;
}

type t = {
  mutable vars : var_info array;
  mutable n_vars : int;
  mutable constrs_rev : constr list;
  mutable n_constrs : int;
  mutable obj_dir : dir;
  mutable obj_const : float;
  mutable obj : (var * float) list;
}

let create () =
  {
    vars = Array.make 16 { name = ""; lo = 0.0; hi = 0.0; integer = false };
    n_vars = 0;
    constrs_rev = [];
    n_constrs = 0;
    obj_dir = Minimize;
    obj_const = 0.0;
    obj = [];
  }

let check_bounds lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Model: NaN bound";
  if lo > hi then
    invalid_arg (Printf.sprintf "Model: empty bound range [%g, %g]" lo hi)

let grow t =
  if t.n_vars = Array.length t.vars then begin
    let bigger =
      Array.make (2 * Array.length t.vars)
        { name = ""; lo = 0.0; hi = 0.0; integer = false }
    in
    Array.blit t.vars 0 bigger 0 t.n_vars;
    t.vars <- bigger
  end

let add_var ?name ?(integer = false) ~lo ~hi t =
  check_bounds lo hi;
  grow t;
  let id = t.n_vars in
  let name = match name with Some n -> n | None -> Printf.sprintf "v%d" id in
  t.vars.(id) <- { name; lo; hi; integer };
  t.n_vars <- id + 1;
  id

let add_vars ?(prefix = "v") ~n ~lo ~hi t =
  Array.init n (fun i ->
      add_var ~name:(Printf.sprintf "%s%d" prefix i) ~lo ~hi t)

let check_var t j =
  if j < 0 || j >= t.n_vars then
    invalid_arg (Printf.sprintf "Model: unknown variable %d" j)

let add_constr t row sense rhs =
  List.iter (fun (j, _) -> check_var t j) row;
  if Float.is_nan rhs then invalid_arg "Model.add_constr: NaN rhs";
  t.constrs_rev <- { row; sense; rhs } :: t.constrs_rev;
  t.n_constrs <- t.n_constrs + 1

let set_objective t dir ?(const = 0.0) obj =
  List.iter (fun (j, _) -> check_var t j) obj;
  t.obj_dir <- dir;
  t.obj_const <- const;
  t.obj <- obj

let set_bounds t j ~lo ~hi =
  check_var t j;
  check_bounds lo hi;
  t.vars.(j).lo <- lo;
  t.vars.(j).hi <- hi

let n_vars t = t.n_vars

let n_constrs t = t.n_constrs

let var_lo t j = check_var t j; t.vars.(j).lo

let var_hi t j = check_var t j; t.vars.(j).hi

let var_name t j = check_var t j; t.vars.(j).name

let is_integer t j = check_var t j; t.vars.(j).integer

let integer_vars t =
  let rec collect j acc =
    if j < 0 then acc
    else collect (j - 1) (if t.vars.(j).integer then j :: acc else acc)
  in
  collect (t.n_vars - 1) []

let constrs t = Array.of_list (List.rev t.constrs_rev)

let same_structure ?(except = []) a b =
  let bits = Int64.bits_of_float in
  let row_eq r s =
    List.length r = List.length s
    && List.for_all2
         (fun (j, c) (j', c') -> j = j' && bits c = bits c')
         r s
  in
  let constr_eq (c : constr) (d : constr) =
    c.sense = d.sense && bits c.rhs = bits d.rhs && row_eq c.row d.row
  in
  a.n_vars = b.n_vars && a.n_constrs = b.n_constrs
  && (let ok = ref true in
      for j = 0 to a.n_vars - 1 do
        let va = a.vars.(j) and vb = b.vars.(j) in
        if va.integer <> vb.integer then ok := false;
        if (not (List.mem j except))
           && (bits va.lo <> bits vb.lo || bits va.hi <> bits vb.hi)
        then ok := false
      done;
      !ok)
  && List.for_all2 constr_eq (List.rev a.constrs_rev)
       (List.rev b.constrs_rev)

let objective t = (t.obj_dir, t.obj_const, t.obj)

let pp_sense fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp_row t fmt row =
  if row = [] then Format.pp_print_string fmt "0"
  else
    List.iteri
      (fun k (j, c) ->
        if k > 0 then Format.fprintf fmt " + ";
        Format.fprintf fmt "%g*%s" c t.vars.(j).name)
      row

let pp fmt t =
  let dir = match t.obj_dir with Minimize -> "min" | Maximize -> "max" in
  Format.fprintf fmt "@[<v>%s %a + %g@," dir (pp_row t) t.obj t.obj_const;
  List.iter
    (fun c ->
      Format.fprintf fmt "  %a %a %g@," (pp_row t) c.row pp_sense c.sense
        c.rhs)
    (List.rev t.constrs_rev);
  for j = 0 to t.n_vars - 1 do
    let v = t.vars.(j) in
    Format.fprintf fmt "  %g <= %s <= %g%s@," v.lo v.name v.hi
      (if v.integer then " (int)" else "")
  done;
  Format.fprintf fmt "@]"
