let span_duration (sp : Trace.span) =
  if Float.is_nan sp.Trace.sp_stop then 0.0
  else sp.Trace.sp_stop -. sp.Trace.sp_start

let children sp = List.rev sp.Trace.sp_children

let counters sp = List.rev sp.Trace.sp_counters

let pp_duration b d =
  if d >= 1.0 then Printf.bprintf b "%.3fs" d
  else if d >= 1e-3 then Printf.bprintf b "%.3fms" (d *. 1e3)
  else Printf.bprintf b "%.1fus" (d *. 1e6)

let span_tree roots =
  let b = Buffer.create 1024 in
  let rec pp depth sp =
    Buffer.add_string b (String.make (2 * depth) ' ');
    Buffer.add_string b sp.Trace.sp_name;
    Buffer.add_string b "  ";
    pp_duration b (span_duration sp);
    (match counters sp with
     | [] -> ()
     | cs ->
         Buffer.add_string b "  [";
         Buffer.add_string b
           (String.concat " "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cs));
         Buffer.add_char b ']');
    Buffer.add_char b '\n';
    List.iter (pp (depth + 1)) (children sp)
  in
  List.iter (pp 0) roots;
  Buffer.contents b

(* Minimal JSON string escaping: the strings we emit are span and
   counter names from our own source plus decimal numbers, but escape
   defensively anyway. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_json roots =
  (* earliest start across the export is t = 0 *)
  let t0 =
    List.fold_left
      (fun acc sp -> Float.min acc sp.Trace.sp_start)
      infinity roots
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let rec emit sp =
    if not !first then Buffer.add_char b ',';
    first := false;
    let ts = (sp.Trace.sp_start -. t0) *. 1e6 in
    let dur = span_duration sp *. 1e6 in
    Printf.bprintf b
      "{\"name\":\"%s\",\"cat\":\"grc\",\"ph\":\"X\",\"ts\":%.3f,\
       \"dur\":%.3f,\"pid\":1,\"tid\":%d"
      (escape sp.Trace.sp_name) ts dur sp.Trace.sp_tid;
    (match counters sp with
     | [] -> ()
     | cs ->
         Buffer.add_string b ",\"args\":{";
         Buffer.add_string b
           (String.concat ","
              (List.map
                 (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v)
                 cs));
         Buffer.add_char b '}');
    Buffer.add_char b '}';
    List.iter emit (children sp)
  in
  List.iter emit roots;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let metrics_lines () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string b name;
      Buffer.add_char b ' ';
      (* counters print as integers, gauges keep their fraction *)
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.bprintf b "%.0f" v
      else Printf.bprintf b "%g" v;
      Buffer.add_char b '\n')
    (Metrics.dump ());
  Buffer.contents b
