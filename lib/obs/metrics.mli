(** Process-wide metrics registry.

    Counters and gauges live in one global registry, keyed by name.
    Registration is idempotent (the same name returns the same cell)
    and mutex-protected; updates are single atomic operations, safe to
    issue concurrently from any domain.  Modules register their metrics
    once at initialisation and update them unconditionally — an update
    is one [Atomic.fetch_and_add], cheap enough for per-solve (not
    per-pivot) granularity.

    [reset] zeroes every value without unregistering, so tests can
    observe deltas in isolation. *)

type counter

val counter : string -> counter
(** Register (or look up) the integer counter [name]. *)

val add : counter -> int -> unit

val get : counter -> int

type gauge

val gauge : string -> gauge
(** Register (or look up) the float gauge [name]. *)

val set : gauge -> float -> unit

val get_gauge : gauge -> float

(** {1 Indexed families}

    Per-instance metrics — one counter or gauge per shard, worker or
    backend — named ["base.i"].  The formatted names are memoized, so
    updating a family member in a hot loop allocates nothing after
    first use.  The same [(base, i)] always returns the same cell. *)

val counter_family : string -> int -> counter
(** [counter_family base i] is [counter (base ^ "." ^ string_of_int i)],
    memoized. *)

val gauge_family : string -> int -> gauge
(** [gauge_family base i] is [gauge (base ^ "." ^ string_of_int i)],
    memoized. *)

val dump : unit -> (string * float) list
(** Every registered metric as [(name, value)], sorted by name;
    counters are widened to float. *)

val find : string -> float option
(** Current value of a metric by name, if registered. *)

val reset : unit -> unit
(** Zero all registered counters and gauges. *)
