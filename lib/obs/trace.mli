(** Hierarchical tracing spans.

    A span is a named, timed interval; spans opened while another span
    is open in the same domain nest under it.  Each domain keeps its
    own span stack (domain-local storage, no locking on the hot path);
    a span that completes with no parent becomes a {e root} and is
    appended to a process-wide list under a mutex, so worker domains'
    spans survive the worker and are merged at collection time.

    Tracing is off by default.  When disabled, {!with_span} costs a
    single atomic load (plus the closure the caller built anyway) and
    {!count} a single atomic load — cheap enough to leave in the hot
    paths of the simplex and branch & bound permanently.  When enabled,
    every span takes two clock readings and a small allocation.

    Counters attach solver statistics (pivots, solves, dedup hits…) to
    the innermost open span of the calling domain; they surface in both
    exporters. *)

type span = {
  sp_name : string;
  sp_tid : int;  (** domain id the span ran on *)
  sp_start : float;  (** {!Clock.now} at open *)
  mutable sp_stop : float;  (** {!Clock.now} at close; [nan] while open *)
  mutable sp_counters : (string * int) list;  (** newest first *)
  mutable sp_children : span list;  (** newest first; exporters reverse *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turning tracing off does not discard already-collected spans. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span named [name].  The span closes (and
    the stack pops) even if the thunk raises.  No-op when disabled. *)

val count : string -> int -> unit
(** Add [n] to counter [key] of the innermost open span of this domain.
    No-op when disabled or when no span is open. *)

val roots : unit -> span list
(** Completed parentless spans, across all domains, in completion
    order.  Spans still open are not included. *)

val reset : unit -> unit
(** Drop all collected root spans (open spans are unaffected). *)
