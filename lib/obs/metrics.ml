type counter = int Atomic.t

type gauge = int64 Atomic.t (* float bits: Atomic.t over floats would box *)

type cell = C of counter | G of gauge

let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let register name make =
  Mutex.lock registry_mutex;
  let cell =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.replace registry name c;
        c
  in
  Mutex.unlock registry_mutex;
  cell

let counter name =
  match register name (fun () -> C (Atomic.make 0)) with
  | C c -> c
  | G _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is a gauge")

let add c n = ignore (Atomic.fetch_and_add c n)

let get c = Atomic.get c

let gauge name =
  match register name (fun () -> G (Atomic.make (Int64.bits_of_float 0.0)))
  with
  | G g -> g
  | C _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " is a counter")

let set g v = Atomic.set g (Int64.bits_of_float v)

let get_gauge g = Int64.float_of_bits (Atomic.get g)

let value = function
  | C c -> float_of_int (Atomic.get c)
  | G g -> Int64.float_of_bits (Atomic.get g)

let dump () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun k c acc -> (k, value c) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) all

let find name =
  Mutex.lock registry_mutex;
  let r = Option.map value (Hashtbl.find_opt registry name) in
  Mutex.unlock registry_mutex;
  r

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ -> function
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g (Int64.bits_of_float 0.0))
    registry;
  Mutex.unlock registry_mutex
