type counter = int Atomic.t

type gauge = int64 Atomic.t (* float bits: Atomic.t over floats would box *)

type cell = C of counter | G of gauge

let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let register name make =
  Mutex.lock registry_mutex;
  let cell =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.replace registry name c;
        c
  in
  Mutex.unlock registry_mutex;
  cell

let counter name =
  match register name (fun () -> C (Atomic.make 0)) with
  | C c -> c
  | G _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is a gauge")

let add c n = ignore (Atomic.fetch_and_add c n)

let get c = Atomic.get c

let gauge name =
  match register name (fun () -> G (Atomic.make (Int64.bits_of_float 0.0)))
  with
  | G g -> g
  | C _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " is a counter")

let set g v = Atomic.set g (Int64.bits_of_float v)

let get_gauge g = Int64.float_of_bits (Atomic.get g)

(* Indexed families ("shard.3.routed"): memoize the formatted names so
   a hot loop updating per-shard metrics never re-allocates them and
   never takes the registry mutex after first use. *)
let family_memo : (string * int, cell) Hashtbl.t = Hashtbl.create 32

let family_memo_mutex = Mutex.create ()

let family_cell base i make =
  Mutex.lock family_memo_mutex;
  match Hashtbl.find_opt family_memo (base, i) with
  | Some c ->
      Mutex.unlock family_memo_mutex;
      c
  | None ->
      Mutex.unlock family_memo_mutex;
      (* [make] may raise (name already registered with the other
         kind); build the cell outside the lock.  A racing duplicate is
         benign: both resolve to the same registry cell by name. *)
      let c = make (Printf.sprintf "%s.%d" base i) in
      Mutex.lock family_memo_mutex;
      Hashtbl.replace family_memo (base, i) c;
      Mutex.unlock family_memo_mutex;
      c

let counter_family base i =
  match family_cell base i (fun name -> C (counter name)) with
  | C c -> c
  | G _ -> invalid_arg ("Obs.Metrics.counter_family: " ^ base ^ " is a gauge")

let gauge_family base i =
  match family_cell base i (fun name -> G (gauge name)) with
  | G g -> g
  | C _ ->
      invalid_arg ("Obs.Metrics.gauge_family: " ^ base ^ " is a counter")

let value = function
  | C c -> float_of_int (Atomic.get c)
  | G g -> Int64.float_of_bits (Atomic.get g)

let dump () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun k c acc -> (k, value c) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) all

let find name =
  Mutex.lock registry_mutex;
  let r = Option.map value (Hashtbl.find_opt registry name) in
  Mutex.unlock registry_mutex;
  r

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ -> function
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g (Int64.bits_of_float 0.0))
    registry;
  Mutex.unlock registry_mutex
