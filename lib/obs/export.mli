(** Exporters for collected spans and metrics.

    Three formats:
    - {!span_tree}: indented human-readable tree with durations and
      counters, for terminal inspection;
    - {!chrome_json}: Chrome [trace_event] JSON (an object with a
      ["traceEvents"] array of complete — ["ph":"X"] — events),
      loadable in [chrome://tracing] and Perfetto.  Timestamps are
      microseconds relative to the earliest exported span; [tid] is the
      OCaml domain id, so worker domains appear as separate tracks;
      span counters are attached under ["args"];
    - {!metrics_lines}: flat [name value] dump of the metrics
      registry, one per line. *)

val span_tree : Trace.span list -> string
(** Indented tree, one line per span:
    [name  duration  \[counter=value ...\]]. *)

val chrome_json : Trace.span list -> string
(** Chrome trace_event JSON of the given roots and their descendants. *)

val metrics_lines : unit -> string
(** The metrics registry as [name value] lines, sorted by name. *)
