type span = {
  sp_name : string;
  sp_tid : int;
  sp_start : float;
  mutable sp_stop : float;
  mutable sp_counters : (string * int) list;
  mutable sp_children : span list;
}

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled v = Atomic.set enabled_flag v

(* Completed roots, appended under a mutex (reverse completion order).
   Worker domains push their finished top-level spans here, so the data
   survives the worker — including one that later dies on an
   exception. *)
let roots_mutex = Mutex.create ()

let collected : span list ref = ref []

let add_root sp =
  Mutex.lock roots_mutex;
  collected := sp :: !collected;
  Mutex.unlock roots_mutex

let roots () =
  Mutex.lock roots_mutex;
  let r = List.rev !collected in
  Mutex.unlock roots_mutex;
  r

let reset () =
  Mutex.lock roots_mutex;
  collected := [];
  Mutex.unlock roots_mutex

(* Per-domain stack of open spans, innermost first. *)
let stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let count key n =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | sp :: _ -> (
        match List.assoc_opt key sp.sp_counters with
        | None -> sp.sp_counters <- (key, n) :: sp.sp_counters
        | Some v ->
            sp.sp_counters <-
              (key, v + n) :: List.remove_assoc key sp.sp_counters)

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let sp =
      { sp_name = name; sp_tid = (Domain.self () :> int);
        sp_start = Clock.now (); sp_stop = nan; sp_counters = [];
        sp_children = [] }
    in
    stack := sp :: !stack;
    let finish () =
      sp.sp_stop <- Clock.now ();
      (* pop down to (and including) [sp]: tolerate children left open
         by a non-local exit between push and pop *)
      let rec pop = function
        | s :: rest when s == sp -> rest
        | s :: rest ->
            s.sp_stop <- sp.sp_stop;
            pop rest
        | [] -> []
      in
      stack := pop !stack;
      match !stack with
      | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
      | [] -> add_root sp
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
