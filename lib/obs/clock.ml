(* Monotonized gettimeofday: an atomic high-water mark (float bits)
   shared by all domains.  A reading below the mark returns the mark,
   so time never runs backwards anywhere in the process. *)

let high_water = Atomic.make (Int64.bits_of_float 0.0)

let rec monotonize t =
  let prev = Atomic.get high_water in
  let prev_f = Int64.float_of_bits prev in
  if t <= prev_f then prev_f
  else if Atomic.compare_and_set high_water prev (Int64.bits_of_float t) then t
  else monotonize t

let now () = monotonize (Unix.gettimeofday ())

let start = now ()
