(** Monotonized wall clock for span timing.

    The stock runtime exposes no monotonic clock, so [now] monotonizes
    [Unix.gettimeofday]: a process-wide atomic high-water mark makes the
    reported time non-decreasing across every domain, even if the wall
    clock steps backwards (NTP adjustment, VM migration).  Span
    durations and parent/child containment therefore never go
    negative. *)

val now : unit -> float
(** Seconds, non-decreasing process-wide. *)

val start : float
(** The clock value captured at module initialisation; exporters
    subtract it to get small, stable offsets. *)
