module Model = Lp.Model

type stats = {
  mutable lp_solves : int;
  mutable milp_solves : int;
  mutable lp_pivots : int;
  mutable lp_warm : int;
}

let zero_stats () =
  { lp_solves = 0; milp_solves = 0; lp_pivots = 0; lp_warm = 0 }

let merge_stats ~into from =
  into.lp_solves <- into.lp_solves + from.lp_solves;
  into.milp_solves <- into.milp_solves + from.milp_solves;
  into.lp_pivots <- into.lp_pivots + from.lp_pivots;
  into.lp_warm <- into.lp_warm + from.lp_warm

let m_lp_queries = Obs.Metrics.counter "engine.lp_queries"
let m_milp_queries = Obs.Metrics.counter "engine.milp_queries"

(* A bound-query engine over one encoded model.  For pure-LP encodings
   the model is compiled once and every min/max query warm-starts from
   the previous optimal basis (objective-only hot start); models with
   integer marks fall through to branch & bound. *)
type t = {
  run : Model.dir -> (Model.var * float) list -> float option;
  duals : unit -> float array;
}

let session_solution stats ~name ~model session ~objective:(dir, terms) =
  stats.lp_solves <- stats.lp_solves + 1;
  let live = Lp.Simplex.session_stats session in
  let warm0 = live.Lp.Simplex.warm_solves in
  let sol = Lp.Simplex.solve_session ~objective:(dir, terms) session in
  stats.lp_pivots <- stats.lp_pivots + sol.Lp.Simplex.pivots;
  stats.lp_warm <- stats.lp_warm + (live.Lp.Simplex.warm_solves - warm0);
  if Audit_core.Mode.enabled () then begin
    (* independent certificate check against the original model *)
    let lo, hi = Lp.Simplex.session_bounds session in
    Audit_core.Mode.report
      (Audit_core.Certificate.check ~name ~lo ~hi ~objective:(dir, terms)
         ~model sol)
  end;
  sol

let of_session stats ~name ~model session =
  (* row duals of the most recent Optimal solve, for dual-guided
     refinement scoring; [||] before the first one *)
  let last_duals = ref [||] in
  { run =
      (fun dir terms ->
        Obs.Trace.with_span "engine.query" @@ fun () ->
        Obs.Metrics.add m_lp_queries 1;
        let sol =
          session_solution stats ~name ~model session
            ~objective:(dir, terms)
        in
        match sol.Lp.Simplex.status with
        | Lp.Simplex.Optimal ->
            last_duals := sol.Lp.Simplex.duals;
            Some sol.Lp.Simplex.obj
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded
        | Lp.Simplex.Iteration_limit -> None);
    duals = (fun () -> !last_duals) }

let of_milp stats ~options ?bounds ?partition model =
  { run =
      (fun dir terms ->
        Obs.Trace.with_span "engine.query" @@ fun () ->
        Obs.Metrics.add m_milp_queries 1;
        stats.milp_solves <- stats.milp_solves + 1;
        let r =
          Milp.solve ~options ?bounds ?partition ~objective:(dir, terms)
            model
        in
        stats.lp_pivots <- stats.lp_pivots + r.Milp.pivots;
        match r.Milp.status with
        | Milp.Optimal | Milp.Limit | Milp.Lp_failure ->
            (* [bound] is a sound over-approximation in the query
               direction even under Limit / Lp_failure *)
            if Float.is_nan r.Milp.bound then None else Some r.Milp.bound
        | Milp.Infeasible | Milp.Unbounded -> None);
    duals = (fun () -> [||]) }

let of_model stats ~options ~name model =
  if Model.integer_vars model = [] then
    of_session stats ~name ~model
      (Lp.Simplex.create_session (Lp.Simplex.compile model))
  else of_milp stats ~options model
