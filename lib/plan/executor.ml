module Model = Lp.Model

(* The paper's future-work item: the per-neuron sub-problems of one
   layer are independent, so fan them out over OCaml 5 domains.  Each
   worker only reads shared state (compiled matrices, the plan itself);
   results are applied sequentially after the join.

   [init] builds one context per worker (solver sessions plus a
   statistics record): warm starts need per-worker mutable state, and
   the contexts are returned so the caller can merge the statistics.

   If a worker raises, every spawned domain is still joined and every
   produced context — including the failing worker's — is passed to
   [finally] (in the calling domain) before the first exception is
   re-raised with its backtrace.  Partial statistics therefore survive
   a failed run. *)
let parallel_map ?(finally : 'c -> unit = fun _ -> ()) n_domains
    ~(init : unit -> 'c) (items : 'a array) (f : 'c -> 'a -> 'b) :
    'b array * 'c list =
  let n = Array.length items in
  if n_domains <= 1 || n <= 1 then begin
    let ctx = init () in
    match Array.map (f ctx) items with
    | out ->
        finally ctx;
        (out, [ ctx ])
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finally ctx;
        Printexc.raise_with_backtrace e bt
  end
  else begin
    let k = min n_domains n in
    let chunk d =
      let per = (n + k - 1) / k in
      (* ceil division can overshoot: with n = 5, k = 4 the last chunk
         would start at 6 > n, so clamp both ends into [0, n] (an empty
         chunk, not a negative-length List.init) *)
      let start = min n (d * per) in
      let stop = min n (start + per) in
      (start, stop)
    in
    let workers =
      List.init k (fun d ->
          Domain.spawn (fun () ->
              Obs.Trace.with_span "executor.worker" @@ fun () ->
              let ctx = init () in
              let res =
                match
                  let start, stop = chunk d in
                  List.init (stop - start) (fun i ->
                      (start + i, f ctx items.(start + i)))
                with
                | rs -> Ok rs
                | exception e -> Error (e, Printexc.get_raw_backtrace ())
              in
              (res, ctx)))
    in
    (* join everything before deciding the outcome: re-raising at the
       first failed join would leave later domains unjoined and drop
       their contexts *)
    let joined = List.map Domain.join workers in
    let out = Array.make n None in
    let ctxs =
      List.map
        (fun (res, ctx) ->
          (match res with
           | Ok rs -> List.iter (fun (i, r) -> out.(i) <- Some r) rs
           | Error _ -> ());
          finally ctx;
          ctx)
        joined
    in
    match
      List.find_map
        (function Error e, _ -> Some e | Ok _, _ -> None)
        joined
    with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> (Array.map Option.get out, ctxs)
  end

type config = {
  domains : int;
  milp_options : Milp.options;
}

(* --- cross-run pool ---

   A pool keeps compiled LP matrices alive across [run] calls, keyed
   by the planner's cone signature.  Equal signatures guarantee
   bit-identical models up to input variable bounds (see
   [Cert.Planner.signature]); a pooled matrix is therefore solved
   under the *current* task model's bounds, exactly the dedup-replay
   mechanism, so answers are unchanged.  A [same_structure] check (all
   bounds excepted) guards against cross-run signature collisions.

   Simplex *sessions* are deliberately not retained between runs:
   [solve_session] after a bound-change restart agrees with a cold
   solve only up to solver tolerances, and a certifier answer computed
   from a recycled basis can differ in its last bits from the one-shot
   answer — which then snowballs (layer-k bounds feed layer-k+1
   signatures and results).  Sessions are created fresh per run and
   warm-started only *within* it, the exact solve sequence of an
   unpooled run, so pooled answers stay bitwise-reproducible. *)

type pool_entry = {
  pe_model : Model.t;
  pe_compiled : Lp.Simplex.compiled;
}

type pool = {
  mutable pool_compiles : int;
  mutable pool_hits : int;
  pool_entries : (string, pool_entry) Hashtbl.t;
}

let create_pool () =
  { pool_compiles = 0; pool_hits = 0; pool_entries = Hashtbl.create 64 }

let m_runs = Obs.Metrics.counter "executor.runs"
let m_units = Obs.Metrics.counter "executor.units"
let m_pool_hits = Obs.Metrics.counter "executor.pool_hits"
let m_pool_compiles = Obs.Metrics.counter "executor.pool_compiles"

let pool_counters p = (p.pool_compiles, p.pool_hits)

(* Keep runaway workloads bounded: a pool past this many distinct
   cones is cleared rather than grown. *)
let pool_cap = 512

(* Structural bounds of [model], as fresh arrays. *)
let model_bounds (model : Model.t) =
  let n = Model.n_vars model in
  (Array.init n (Model.var_lo model), Array.init n (Model.var_hi model))

let all_vars model = List.init (Model.n_vars model) Fun.id

(* Where a task's compiled matrix comes from. *)
type task_source =
  | Milp_task                          (* integer marks: no LP compile *)
  | Fresh of Lp.Simplex.compiled       (* compiled from this very model *)
  | Pooled of pool_entry               (* shared matrix from a prior run *)

let compile_task pool (t : Spec.task) =
  if t.Spec.integer then Milp_task
  else
    match pool with
    | Some p when t.Spec.signature <> "" -> (
        match Hashtbl.find_opt p.pool_entries t.Spec.signature with
        | Some e
          when Lp.Model.same_structure ~except:(all_vars t.Spec.model)
                 e.pe_model t.Spec.model ->
            p.pool_hits <- p.pool_hits + 1;
            Obs.Metrics.add m_pool_hits 1;
            Pooled e
        | _ ->
            if Hashtbl.length p.pool_entries >= pool_cap then
              Hashtbl.reset p.pool_entries;
            let cp = Lp.Simplex.compile t.Spec.model in
            let e = { pe_model = t.Spec.model; pe_compiled = cp } in
            p.pool_compiles <- p.pool_compiles + 1;
            Obs.Metrics.add m_pool_compiles 1;
            Hashtbl.replace p.pool_entries t.Spec.signature e;
            Pooled e)
    | _ -> Fresh (Lp.Simplex.compile t.Spec.model)

type request = {
  query : Query.t;
  label : string;
  dir : Model.dir;
  terms : (Model.var * float) list;
}

type solve = request -> float option

type outcome = {
  affine : (Spec.affine * Spec.range) array;
  solved : (Query.t * float option) array;
  dual_sens : ((int * int) * float) array;
  stats : Engine.stats;
}

(* Bounds arrays for a replayed unit: the task model's own structural
   bounds with the instance's input intervals overlaid. *)
let override_bounds (model : Model.t) overrides =
  let n = Model.n_vars model in
  let lo = Array.init n (Model.var_lo model) in
  let hi = Array.init n (Model.var_hi model) in
  List.iter
    (fun (v, (r : Spec.range)) ->
      lo.(v) <- r.Spec.lo;
      hi.(v) <- r.Spec.hi)
    overrides;
  (lo, hi)

let run ?hook ?pool ?partial_stats config (plan : Spec.t) =
  Obs.Trace.with_span "executor.run" @@ fun () ->
  Obs.Metrics.add m_runs 1;
  Obs.Metrics.add m_units (Array.length plan.Spec.units);
  Obs.Trace.count "units" (Array.length plan.Spec.units);
  let affine =
    Array.map (fun a -> (a, Spec.eval_affine a)) plan.Spec.affine
  in
  (* compile LP task matrices once, up front and sequentially: every
     unit that shares a task shares the read-only compiled form, and a
     [pool] carries the compiled matrices of signed cones (plus their
     warm sessions, when running sequentially) across runs *)
  let sources = Array.map (compile_task pool) plan.Spec.tasks in
  (* column slices of the dual-sensitivity probe variables, extracted
     once per probed task (eagerly: workers share them read-only) *)
  let probe_cols =
    Array.map
      (fun (t : Spec.task) ->
        if Array.length t.Spec.probes = 0 then None
        else
          Some
            (Search.Strategy.Columns.make t.Spec.model
               ~vars:(Array.map snd t.Spec.probes)))
      plan.Spec.tasks
  in
  let engine_for (stats, cache) (u : Spec.unit_of_work) =
    let task = plan.Spec.tasks.(u.Spec.task_id) in
    if u.Spec.overrides = [] then begin
      (* the task's defining instance: one persistent engine per worker
         per task, so a per-neuron min/max sweep over a shared dense
         encoding runs as objective-only hot starts *)
      match Hashtbl.find_opt cache u.Spec.task_id with
      | Some e -> e
      | None ->
          let e =
            match sources.(u.Spec.task_id) with
            | Fresh cp ->
                Engine.of_session stats ~name:task.Spec.label
                  ~model:task.Spec.model
                  (Lp.Simplex.create_session cp)
            | Pooled pe ->
                (* bounds come from the *current* model: the pooled
                   matrix is bit-identical up to (overridden) variable
                   bounds, so this answers exactly like a fresh
                   encoding of this task *)
                let lo, hi = model_bounds task.Spec.model in
                Engine.of_session stats ~name:task.Spec.label
                  ~model:task.Spec.model
                  (Lp.Simplex.create_session ~lo ~hi pe.pe_compiled)
            | Milp_task ->
                Engine.of_milp stats ~options:config.milp_options
                  ~partition:task.Spec.partition task.Spec.model
          in
          Hashtbl.add cache u.Spec.task_id e;
          e
    end
    else begin
      (* a deduplicated replay: fresh engine over the shared matrix with
         the instance's input bounds, never a warm-started carry-over —
         results must be bitwise-identical to a fresh encoding *)
      let replay cp =
        let lo, hi = model_bounds task.Spec.model in
        List.iter
          (fun (v, (r : Spec.range)) ->
            lo.(v) <- r.Spec.lo;
            hi.(v) <- r.Spec.hi)
          u.Spec.overrides;
        Engine.of_session stats ~name:task.Spec.label ~model:task.Spec.model
          (Lp.Simplex.create_session ~lo ~hi cp)
      in
      match sources.(u.Spec.task_id) with
      | Fresh cp -> replay cp
      | Pooled pe -> replay pe.pe_compiled
      | Milp_task ->
          let bounds = override_bounds task.Spec.model u.Spec.overrides in
          Engine.of_milp stats ~options:config.milp_options ~bounds
            ~partition:task.Spec.partition task.Spec.model
    end
  in
  let init () = (Engine.zero_stats (), Hashtbl.create 8) in
  let compute ctx (u : Spec.unit_of_work) =
    Obs.Trace.with_span "executor.unit" @@ fun () ->
    let engine = engine_for ctx u in
    let task = plan.Spec.tasks.(u.Spec.task_id) in
    let probes = task.Spec.probes in
    let acc = Array.make (Array.length probes) 0.0 in
    let base (req : request) = engine.Engine.run req.dir req.terms in
    let solve = match hook with None -> base | Some h -> h base in
    let solved =
      Array.map
        (fun (qs : Spec.query_spec) ->
          let req =
            { query = qs.Spec.q; label = task.Spec.label;
              dir = Query.lp_dir qs.Spec.q.Query.dir; terms = qs.Spec.terms }
          in
          let r = (qs.Spec.q, solve req) in
          (match probe_cols.(u.Spec.task_id) with
           | None -> ()
           | Some cols ->
               (* charge each solve's row duals back to the probed
                  neurons' columns; accumulation is per-unit, merged in
                  unit order after the join, so the totals do not
                  depend on the domain count or schedule *)
               let duals = engine.Engine.duals () in
               if Array.length duals > 0 then
                 Array.iteri
                   (fun k (_, v) ->
                     acc.(k) <-
                       acc.(k)
                       +. Search.Strategy.Columns.sensitivity cols ~duals v)
                   probes);
          r)
        u.Spec.queries
    in
    let sens =
      if Array.length probes = 0 then [||]
      else Array.mapi (fun k (key, _) -> (key, acc.(k))) probes
    in
    (solved, sens)
  in
  let stats = Engine.zero_stats () in
  (* [finally] runs per worker context, after the join, whether or not
     the run failed: the outcome's stats and the caller's
     [partial_stats] accumulator both see every worker's counters, so
     a hook that raises (cancellation, deadline) does not lose the
     solver work already done *)
  let finally ((local : Engine.stats), _) =
    Engine.merge_stats ~into:stats local;
    match partial_stats with
    | Some acc -> Engine.merge_stats ~into:acc local
    | None -> ()
  in
  let per_unit, _ctxs =
    parallel_map ~finally config.domains ~init plan.Spec.units compute
  in
  let solved =
    Array.concat (Array.to_list (Array.map fst per_unit))
  in
  (* sum per-unit sensitivities by neuron, folding units in index order
     (float addition order is fixed, independent of the schedule) *)
  let dual_sens =
    let table = Hashtbl.create 16 and order = ref [] in
    Array.iter
      (fun (_, sens) ->
        Array.iter
          (fun (key, s) ->
            match Hashtbl.find_opt table key with
            | Some prev -> Hashtbl.replace table key (prev +. s)
            | None ->
                Hashtbl.replace table key s;
                order := key :: !order)
          sens)
      per_unit;
    Array.of_list
      (List.rev_map (fun key -> (key, Hashtbl.find table key)) !order)
  in
  Obs.Trace.count "lp_solves" stats.Engine.lp_solves;
  Obs.Trace.count "milp_solves" stats.Engine.milp_solves;
  { affine; solved; dual_sens; stats }
