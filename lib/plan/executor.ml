module Model = Lp.Model

(* The paper's future-work item: the per-neuron sub-problems of one
   layer are independent, so fan them out over OCaml 5 domains.  Each
   worker only reads shared state (compiled matrices, the plan itself);
   results are applied sequentially after the join.

   [init] builds one context per worker (solver sessions plus a
   statistics record): warm starts need per-worker mutable state, and
   the contexts are returned so the caller can merge the statistics. *)
let parallel_map n_domains ~(init : unit -> 'c) (items : 'a array)
    (f : 'c -> 'a -> 'b) : 'b array * 'c list =
  let n = Array.length items in
  if n_domains <= 1 || n <= 1 then begin
    let ctx = init () in
    (Array.map (f ctx) items, [ ctx ])
  end
  else begin
    let k = min n_domains n in
    let chunk d =
      let per = (n + k - 1) / k in
      (* ceil division can overshoot: with n = 5, k = 4 the last chunk
         would start at 6 > n, so clamp both ends into [0, n] (an empty
         chunk, not a negative-length List.init) *)
      let start = min n (d * per) in
      let stop = min n (start + per) in
      (start, stop)
    in
    let workers =
      List.init k (fun d ->
          Domain.spawn (fun () ->
              let ctx = init () in
              let start, stop = chunk d in
              ( List.init (stop - start) (fun i ->
                    (start + i, f ctx items.(start + i))),
                ctx )))
    in
    let out = Array.make n None in
    let ctxs =
      List.map
        (fun w ->
          let rs, ctx = Domain.join w in
          List.iter (fun (i, r) -> out.(i) <- Some r) rs;
          ctx)
        workers
    in
    (Array.map Option.get out, ctxs)
  end

type config = {
  domains : int;
  milp_options : Milp.options;
}

type request = {
  query : Query.t;
  label : string;
  dir : Model.dir;
  terms : (Model.var * float) list;
}

type solve = request -> float option

type outcome = {
  affine : (Spec.affine * Spec.range) array;
  solved : (Query.t * float option) array;
  stats : Engine.stats;
}

(* Bounds arrays for a replayed unit: the task model's own structural
   bounds with the instance's input intervals overlaid. *)
let override_bounds (model : Model.t) overrides =
  let n = Model.n_vars model in
  let lo = Array.init n (Model.var_lo model) in
  let hi = Array.init n (Model.var_hi model) in
  List.iter
    (fun (v, (r : Spec.range)) ->
      lo.(v) <- r.Spec.lo;
      hi.(v) <- r.Spec.hi)
    overrides;
  (lo, hi)

let run ?hook config (plan : Spec.t) =
  let affine =
    Array.map (fun a -> (a, Spec.eval_affine a)) plan.Spec.affine
  in
  (* compile LP task matrices once, up front and sequentially: every
     unit that shares a task shares the read-only compiled form *)
  let compiled =
    Array.map
      (fun (t : Spec.task) ->
        if t.Spec.integer then None else Some (Lp.Simplex.compile t.Spec.model))
      plan.Spec.tasks
  in
  let engine_for (stats, cache) (u : Spec.unit_of_work) =
    let task = plan.Spec.tasks.(u.Spec.task_id) in
    if u.Spec.overrides = [] then begin
      (* the task's defining instance: one persistent engine per worker
         per task, so a per-neuron min/max sweep over a shared dense
         encoding runs as objective-only hot starts *)
      match Hashtbl.find_opt cache u.Spec.task_id with
      | Some e -> e
      | None ->
          let e =
            match compiled.(u.Spec.task_id) with
            | Some cp ->
                Engine.of_session stats ~name:task.Spec.label
                  ~model:task.Spec.model
                  (Lp.Simplex.create_session cp)
            | None ->
                Engine.of_milp stats ~options:config.milp_options
                  task.Spec.model
          in
          Hashtbl.add cache u.Spec.task_id e;
          e
    end
    else begin
      (* a deduplicated replay: fresh engine over the shared matrix with
         the instance's input bounds, never a warm-started carry-over —
         results must be bitwise-identical to a fresh encoding *)
      match compiled.(u.Spec.task_id) with
      | Some cp ->
          let lo, hi = Lp.Simplex.default_bounds cp in
          List.iter
            (fun (v, (r : Spec.range)) ->
              lo.(v) <- r.Spec.lo;
              hi.(v) <- r.Spec.hi)
            u.Spec.overrides;
          Engine.of_session stats ~name:task.Spec.label
            ~model:task.Spec.model
            (Lp.Simplex.create_session ~lo ~hi cp)
      | None ->
          let bounds = override_bounds task.Spec.model u.Spec.overrides in
          Engine.of_milp stats ~options:config.milp_options ~bounds
            task.Spec.model
    end
  in
  let init () = (Engine.zero_stats (), Hashtbl.create 8) in
  let compute ctx (u : Spec.unit_of_work) =
    let engine = engine_for ctx u in
    let task = plan.Spec.tasks.(u.Spec.task_id) in
    let base (req : request) = engine.Engine.run req.dir req.terms in
    let solve = match hook with None -> base | Some h -> h base in
    Array.map
      (fun (qs : Spec.query_spec) ->
        let req =
          { query = qs.Spec.q; label = task.Spec.label;
            dir = Query.lp_dir qs.Spec.q.Query.dir; terms = qs.Spec.terms }
        in
        (qs.Spec.q, solve req))
      u.Spec.queries
  in
  let per_unit, ctxs =
    parallel_map config.domains ~init plan.Spec.units compute
  in
  let stats = Engine.zero_stats () in
  List.iter (fun (local, _) -> Engine.merge_stats ~into:stats local) ctxs;
  let solved = Array.concat (Array.to_list per_unit) in
  { affine; solved; stats }
