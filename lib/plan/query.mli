(** Typed bound queries.

    A query names one end of one certified range: the pre-activation
    value [Y], its twin distance [Dy] or the post-activation distance
    [Dx] of a specific neuron, in a specific direction.  Queries are
    what a {!Spec} plan promises to answer and what the {!Executor}
    reports results against; the [cone] field carries the stable
    signature of the sub-network cone the query is evaluated on (empty
    when the planner did not compute one), which is the deduplication
    key: two queries with the same cone signature are answered from a
    single encoded model. *)

type quantity = Y | Dy | Dx

type dir = Lo | Hi

type t = {
  layer : int;            (** absolute layer index in the network *)
  neuron : int;           (** output-neuron index within the layer *)
  quantity : quantity;
  dir : dir;
  cone : string;          (** stable cone signature, or [""] *)
}

val make : ?cone:string -> layer:int -> neuron:int -> quantity -> dir -> t

val lp_dir : dir -> Lp.Model.dir
(** [Hi] asks for a maximum, [Lo] for a minimum. *)

val quantity_to_string : quantity -> string

val dir_to_string : dir -> string

val to_string : t -> string
(** E.g. ["dy[3][7].hi"]. *)

val same_cell : t -> t -> bool
(** Same layer, neuron and quantity (the two directions of one range). *)

val compare : t -> t -> int
(** Total order ignoring the cone signature. *)
