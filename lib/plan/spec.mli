(** Certification plans as data.

    A plan is the declarative output of a planner: everything a layer
    pass needs solved, with the planning decisions (affine fast path,
    shared encodings, cone deduplication) already made.  The
    {!Executor} consumes it; nothing here solves anything.

    Three item kinds:

    - {!affine}: a bound answered by exact interval evaluation of a
      composed affine row — no LP at all (a ReLU-free window);
    - {!task}: one encoded LP/MILP model, built once;
    - {!unit_of_work}: the parallelisable grain — a batch of queries
      against one task, optionally replayed under bound [overrides]
      (a structurally identical cone whose window inputs differ only
      in their interval data re-uses another cone's encoding). *)

type range = { lo : float; hi : float }

type affine = {
  a_layer : int;
  a_neuron : int;
  a_quantity : Query.quantity;   (** [Y] or [Dy] *)
  a_const : float;
  a_terms : (float * range) list;
      (** coefficient and input range, in row order *)
}

val eval_affine : affine -> range
(** Exact interval evaluation, bit-compatible with the certifier's
    interval arithmetic. *)

type query_spec = {
  q : Query.t;
  terms : (Lp.Model.var * float) list;  (** objective over the task model *)
}

type task = {
  label : string;          (** audit/diagnostic name *)
  model : Lp.Model.t;
  integer : bool;          (** has integer marks: solved by B&B *)
  signature : string;      (** cone signature ([""] if not deduplicable) *)
  probes : ((int * int) * Lp.Model.var) array;
      (** dual-sensitivity probes: (absolute layer, neuron) paired with
          the model variable whose |dual|-weighted column sensitivity
          measures how strongly that neuron's relaxation binds the
          task's LP optima.  Empty unless the planner runs dual-guided
          refinement. *)
  partition : Lp.Model.var array;
      (** continuous variables eligible for interval-partition
          branching when the task is solved by MILP (see
          {!Milp.solve}); empty otherwise *)
}

type unit_of_work = {
  task_id : int;                           (** index into [tasks] *)
  overrides : (Lp.Model.var * range) list;
      (** structural bounds replacing the model's own for this unit;
          empty for the task's defining instance *)
  queries : query_spec array;
}

type t = {
  affine : affine array;
  tasks : task array;
  units : unit_of_work array;
  n_queries : int;     (** LP/MILP bound queries across all units *)
  n_encodes : int;     (** distinct models encoded ([= length tasks]) *)
  dedup_hits : int;    (** units replayed against another cone's model *)
  symbolic_conclusive : int;
      (** bound queries answered by the symbolic pre-analysis alone —
          the planner proved the solver could not improve the stored
          bound and emitted neither encode nor query *)
  symbolic_seeded : int;
      (** variable-bound overrides seeded from symbolic intervals
          strictly tighter than the stored ones *)
}

val empty : t

(** {1 Builder} *)

type builder

val builder : unit -> builder

val add_affine : builder -> affine -> unit

val add_task :
  ?probes:((int * int) * Lp.Model.var) array ->
  ?partition:Lp.Model.var array ->
  builder -> label:string -> signature:string -> Lp.Model.t -> int
(** Registers an encoded model; returns its [task_id].  The [integer]
    flag is derived from the model's integrality marks.  [probes]
    (default empty) requests per-neuron dual-sensitivity accumulation;
    [partition] (default empty) marks interval-partition branching
    candidates for MILP tasks. *)

val add_unit :
  ?dedup:bool ->
  builder -> task_id:int -> overrides:(Lp.Model.var * range) list ->
  query_spec array -> unit
(** [dedup] marks the unit as a replay of an existing encoding (counted
    in {!t.dedup_hits}). *)

val count_symbolic_conclusive : builder -> int -> unit
(** Record [n] bound queries answered conclusively by the symbolic
    pre-analysis (no task, no unit emitted for them). *)

val count_symbolic_seeded : builder -> int -> unit
(** Record [n] bound overrides seeded from symbolic intervals. *)

val finish : builder -> t
(** Items appear in insertion order. *)
