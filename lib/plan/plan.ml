module Query = Query
module Engine = Engine
module Executor = Executor
include Spec
