(** Plan executor: runs a {!Spec.t} over a pool of domain workers.

    The executor owns everything execution-side that used to live
    inline in the certifier: the chunked [Domain] fan-out, per-worker
    warm-started solver sessions, replay of deduplicated cones under
    overridden bounds, statistics merging and audit wiring (via
    {!Engine}).  Callers get back the raw per-query answers and apply
    them to their own state. *)

val parallel_map :
  ?finally:('c -> unit) ->
  int -> init:(unit -> 'c) -> 'a array -> ('c -> 'a -> 'b) -> 'b array * 'c list
(** [parallel_map n_domains ~init items f] maps [f] over [items] in
    contiguous chunks, one chunk per spawned domain (capped at the item
    count; [n_domains <= 1] or a single item runs in the calling
    domain).  [init] builds one worker context; the contexts are
    returned for the caller to merge.  Result order follows [items]
    regardless of worker scheduling.  Total over all valid inputs,
    including [n_domains] exceeding the item count.

    If [f] raises in any worker, every spawned domain is still joined
    and the first exception is re-raised (with its backtrace) in the
    calling domain.  [finally] — which runs in the calling domain — is
    applied to {e every} produced context, on success and on failure
    alike, before the re-raise; use it to salvage per-worker statistics
    from a failed run. *)

type config = {
  domains : int;
  milp_options : Milp.options;
}

(** {1 Cross-run pools}

    A pool keeps the compiled constraint matrices of {e signed} LP
    tasks (cones with a non-empty {!Spec.task.signature}) alive across
    [run] calls.  Because equal signatures guarantee models that are
    bit-identical up to input variable bounds, a pooled matrix is
    re-solved under the current task's own bounds — the same mechanism
    as an in-plan dedup replay — so answers are unchanged.

    Solver {e sessions} are never retained between runs: a warm solve
    after a bound-change restart matches a cold solve only up to
    solver tolerances, so recycling a basis across runs would make
    answers depend on request history.  Each run creates its sessions
    fresh and warm-starts only within the run — exactly the solve
    sequence of an unpooled run, so pooled answers are
    bitwise-reproducible. *)

(** A pool is single-owner mutable state: use one per worker (the
    certification daemon keeps one per worker domain), never share one
    between concurrent [run] calls. *)

type pool

val create_pool : unit -> pool

val pool_counters : pool -> int * int
(** [(compiles, hits)]: matrices compiled into the pool, and tasks
    served from a pooled matrix instead of a fresh compile. *)

type request = {
  query : Query.t;
  label : string;                        (** owning task's label *)
  dir : Lp.Model.dir;
  terms : (Lp.Model.var * float) list;
}

type solve = request -> float option

type outcome = {
  affine : (Spec.affine * Spec.range) array;
      (** fast-path items paired with their exact interval evaluation *)
  solved : (Query.t * float option) array;
      (** one entry per planned query, in plan order (units in order,
          each unit's queries in order) *)
  dual_sens : ((int * int) * float) array;
      (** accumulated |dual| column sensitivity per probed neuron (see
          {!Spec.task.probes}), summed over every solve of every unit
          of the probed tasks.  Per-unit sums are folded in unit index
          order, so the totals are independent of the domain count and
          schedule.  Empty when no task carries probes. *)
  stats : Engine.stats;
}

val run :
  ?hook:(solve -> solve) ->
  ?pool:pool ->
  ?partial_stats:Engine.stats ->
  config -> Spec.t -> outcome
(** Execute a plan.  [hook] wraps the base per-query solve (for
    instrumentation, query interception in tests and experiments, or
    cooperative cancellation — the certification daemon's deadline
    checks raise from here); it runs inside worker domains, so it must
    be thread-safe.  [pool] carries compiled matrices across runs (see
    {!type:pool}).  [partial_stats], when given, accumulates every
    worker's counters even when the run raises (a cancellation hook,
    say): on success it ends up equal to the outcome's [stats] merged
    on top of its initial value, and on failure it holds whatever the
    workers completed before the exception.

    Execution contract, relied on for reproducibility:
    - LP task matrices are compiled once and shared read-only;
    - a unit with empty [overrides] uses one persistent warm-started
      engine per worker per task (created on first use);
    - a unit with [overrides] gets a fresh cold-start engine over the
      shared matrix with the overridden bounds, so a deduplicated
      replay answers bitwise-identically to a fresh encoding of the
      same cone. *)
