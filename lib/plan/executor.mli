(** Plan executor: runs a {!Spec.t} over a pool of domain workers.

    The executor owns everything execution-side that used to live
    inline in the certifier: the chunked [Domain] fan-out, per-worker
    warm-started solver sessions, replay of deduplicated cones under
    overridden bounds, statistics merging and audit wiring (via
    {!Engine}).  Callers get back the raw per-query answers and apply
    them to their own state. *)

val parallel_map :
  int -> init:(unit -> 'c) -> 'a array -> ('c -> 'a -> 'b) -> 'b array * 'c list
(** [parallel_map n_domains ~init items f] maps [f] over [items] in
    contiguous chunks, one chunk per spawned domain (capped at the item
    count; [n_domains <= 1] or a single item runs in the calling
    domain).  [init] builds one worker context; the contexts are
    returned for the caller to merge.  Result order follows [items]
    regardless of worker scheduling.  Total over all valid inputs,
    including [n_domains] exceeding the item count. *)

type config = {
  domains : int;
  milp_options : Milp.options;
}

type request = {
  query : Query.t;
  label : string;                        (** owning task's label *)
  dir : Lp.Model.dir;
  terms : (Lp.Model.var * float) list;
}

type solve = request -> float option

type outcome = {
  affine : (Spec.affine * Spec.range) array;
      (** fast-path items paired with their exact interval evaluation *)
  solved : (Query.t * float option) array;
      (** one entry per planned query, in plan order (units in order,
          each unit's queries in order) *)
  stats : Engine.stats;
}

val run : ?hook:(solve -> solve) -> config -> Spec.t -> outcome
(** Execute a plan.  [hook] wraps the base per-query solve (for
    instrumentation or query interception in tests and experiments);
    it runs inside worker domains, so it must be thread-safe.

    Execution contract, relied on for reproducibility:
    - LP task matrices are compiled once and shared read-only;
    - a unit with empty [overrides] uses one persistent warm-started
      engine per worker per task (created on first use);
    - a unit with [overrides] gets a fresh cold-start engine over the
      shared matrix with the overridden bounds, so a deduplicated
      replay answers bitwise-identically to a fresh encoding of the
      same cone. *)
