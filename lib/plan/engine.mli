(** Bound-query engines and solve statistics.

    An engine answers min/max queries over one encoded model, charging
    a shared {!stats} record.  LP models are served by a warm-started
    {!Lp.Simplex} session (min queries hot-start from the preceding max
    query's basis); integer-marked models fall through to {!Milp}
    branch & bound.  Every caller of the certification stack — the
    certifier's {!Executor}, the encoding variants, the local
    certifier, the Reluplex-style search — queries bounds through this
    module, so solve accounting and audit-mode certificate checks live
    in exactly one place. *)

type stats = {
  mutable lp_solves : int;
  mutable milp_solves : int;
  mutable lp_pivots : int;
  mutable lp_warm : int;    (** solves served from a retained basis *)
}

val zero_stats : unit -> stats

val merge_stats : into:stats -> stats -> unit

type t = {
  run : Lp.Model.dir -> (Lp.Model.var * float) list -> float option;
      (** optimise the sparse objective; [None] on infeasible,
          unbounded or iteration-limited solves *)
  duals : unit -> float array;
      (** row duals of the engine's most recent Optimal solve ([[||]]
          before the first, and always for MILP engines, whose final
          answer has no single dual vector).  Minimisation-sense row
          multipliers, used for dual-guided refinement scoring. *)
}

val session_solution :
  stats ->
  name:string ->
  model:Lp.Model.t ->
  Lp.Simplex.session ->
  objective:Lp.Model.dir * (Lp.Model.var * float) list ->
  Lp.Simplex.solution
(** One audited, counted session solve returning the full solution
    (variable values included) — for callers that need the optimiser's
    point, e.g. incumbent extraction in the Reluplex-style search.
    [name] labels audit diagnostics. *)

val of_session :
  stats -> name:string -> model:Lp.Model.t -> Lp.Simplex.session -> t

val of_milp :
  stats ->
  options:Milp.options ->
  ?bounds:float array * float array ->
  ?partition:int array ->
  Lp.Model.t -> t
(** [bounds] overrides the model's structural root bounds (see
    {!Milp.solve}); used to replay a deduplicated integer cone under an
    instance's input intervals.  [partition] lists continuous variables
    eligible for interval-partition branching (see {!Milp.solve}). *)

val of_model : stats -> options:Milp.options -> name:string -> Lp.Model.t -> t
(** Session engine when the model has no integer marks, MILP engine
    otherwise. *)
