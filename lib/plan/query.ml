type quantity = Y | Dy | Dx

type dir = Lo | Hi

type t = {
  layer : int;
  neuron : int;
  quantity : quantity;
  dir : dir;
  cone : string;
}

let make ?(cone = "") ~layer ~neuron quantity dir =
  { layer; neuron; quantity; dir; cone }

let quantity_to_string = function Y -> "y" | Dy -> "dy" | Dx -> "dx"

let dir_to_string = function Lo -> "lo" | Hi -> "hi"

let lp_dir = function Lo -> Lp.Model.Minimize | Hi -> Lp.Model.Maximize

let to_string q =
  Printf.sprintf "%s[%d][%d].%s" (quantity_to_string q.quantity) q.layer
    q.neuron (dir_to_string q.dir)

let same_cell a b =
  a.layer = b.layer && a.neuron = b.neuron && a.quantity = b.quantity

let compare (a : t) (b : t) =
  Stdlib.compare
    (a.layer, a.neuron, a.quantity, a.dir)
    (b.layer, b.neuron, b.quantity, b.dir)
