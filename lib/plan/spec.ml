type range = { lo : float; hi : float }

type affine = {
  a_layer : int;
  a_neuron : int;
  a_quantity : Query.quantity;
  a_const : float;
  a_terms : (float * range) list;
}

(* Mirrors the certifier's interval arithmetic exactly (Interval.point /
   scale / add): the affine fast path must produce bit-identical floats
   whether it is evaluated here or by the legacy inline loop. *)
let eval_affine a =
  List.fold_left
    (fun acc (c, r) ->
      let lo, hi =
        (* a zero coefficient contributes nothing even over an unbounded
           range; [0. *. infinity] would be NaN *)
        if c = 0.0 then (0.0, 0.0)
        else if c > 0.0 then (c *. r.lo, c *. r.hi)
        else (c *. r.hi, c *. r.lo)
      in
      { lo = acc.lo +. lo; hi = acc.hi +. hi })
    { lo = a.a_const; hi = a.a_const }
    a.a_terms

type query_spec = {
  q : Query.t;
  terms : (Lp.Model.var * float) list;
}

type task = {
  label : string;
  model : Lp.Model.t;
  integer : bool;
  signature : string;
  probes : ((int * int) * Lp.Model.var) array;
  partition : Lp.Model.var array;
}

type unit_of_work = {
  task_id : int;
  overrides : (Lp.Model.var * range) list;
  queries : query_spec array;
}

type t = {
  affine : affine array;
  tasks : task array;
  units : unit_of_work array;
  n_queries : int;
  n_encodes : int;
  dedup_hits : int;
  symbolic_conclusive : int;
  symbolic_seeded : int;
}

let empty =
  { affine = [||]; tasks = [||]; units = [||]; n_queries = 0; n_encodes = 0;
    dedup_hits = 0; symbolic_conclusive = 0; symbolic_seeded = 0 }

(* --- builder --- *)

type builder = {
  mutable b_affine : affine list;
  mutable b_tasks : task list;
  mutable b_n_tasks : int;
  mutable b_units : unit_of_work list;
  mutable b_n_queries : int;
  mutable b_dedup_hits : int;
  mutable b_symbolic_conclusive : int;
  mutable b_symbolic_seeded : int;
}

let builder () =
  { b_affine = []; b_tasks = []; b_n_tasks = 0; b_units = [];
    b_n_queries = 0; b_dedup_hits = 0; b_symbolic_conclusive = 0;
    b_symbolic_seeded = 0 }

let count_symbolic_conclusive b n =
  b.b_symbolic_conclusive <- b.b_symbolic_conclusive + n

let count_symbolic_seeded b n =
  b.b_symbolic_seeded <- b.b_symbolic_seeded + n

let add_affine b a = b.b_affine <- a :: b.b_affine

let add_task ?(probes = [||]) ?(partition = [||]) b ~label ~signature model =
  let id = b.b_n_tasks in
  b.b_tasks <-
    { label; model; integer = Lp.Model.integer_vars model <> []; signature;
      probes; partition }
    :: b.b_tasks;
  b.b_n_tasks <- id + 1;
  id

let add_unit ?(dedup = false) b ~task_id ~overrides queries =
  b.b_units <- { task_id; overrides; queries } :: b.b_units;
  b.b_n_queries <- b.b_n_queries + Array.length queries;
  if dedup then b.b_dedup_hits <- b.b_dedup_hits + 1

let finish b =
  { affine = Array.of_list (List.rev b.b_affine);
    tasks = Array.of_list (List.rev b.b_tasks);
    units = Array.of_list (List.rev b.b_units);
    n_queries = b.b_n_queries;
    n_encodes = b.b_n_tasks;
    dedup_hits = b.b_dedup_hits;
    symbolic_conclusive = b.b_symbolic_conclusive;
    symbolic_seeded = b.b_symbolic_seeded }
